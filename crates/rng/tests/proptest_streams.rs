//! Property-based tests of the RNG crate: determinism, stream isolation and the
//! statistical sanity of the sampling utilities, over arbitrary seeds and parameters.

use clb_rng::{
    floyd_sample, sample_distinct_pair, shuffle, AliasTable, Binomial, RandomSource, StreamFactory,
};
use proptest::prelude::*;

proptest! {
    /// The same (seed, domain, entity, round) always produces the same stream, and any
    /// change to one component changes the first output with overwhelming probability.
    #[test]
    fn streams_are_deterministic_and_separated(
        seed in any::<u64>(),
        domain in any::<u64>(),
        entity in any::<u64>(),
        round in 0u64..10_000,
    ) {
        let factory = StreamFactory::new(seed).domain(domain);
        let mut a = factory.stream(entity, round);
        let mut b = factory.stream(entity, round);
        prop_assert_eq!(a.next_u64(), b.next_u64());

        let mut changed_round = factory.stream(entity, round.wrapping_add(1));
        let mut fresh_a = factory.stream(entity, round);
        prop_assert_ne!(fresh_a.next_u64(), changed_round.next_u64());
    }

    /// gen_index is always within bounds, for any bound and any number of draws.
    #[test]
    fn gen_index_bounds(seed in any::<u64>(), bound in 1usize..100_000, draws in 1usize..200) {
        let mut stream = StreamFactory::new(seed).stream(0, 0);
        for _ in 0..draws {
            prop_assert!(stream.gen_index(bound) < bound);
        }
    }

    /// Floyd sampling returns exactly k distinct in-range values for any feasible (n, k).
    #[test]
    fn floyd_sample_properties(seed in any::<u64>(), n in 1usize..2_000, k_frac in 0.0f64..=1.0) {
        let k = ((n as f64) * k_frac) as usize;
        let mut stream = StreamFactory::new(seed).stream(1, 0);
        let sample = floyd_sample(n, k, &mut stream);
        prop_assert_eq!(sample.len(), k);
        prop_assert!(sample.iter().all(|&x| x < n));
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(distinct.len(), k);
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut values in prop::collection::vec(any::<u32>(), 0..200)) {
        let mut stream = StreamFactory::new(seed).stream(2, 0);
        let mut expected = values.clone();
        shuffle(&mut values, &mut stream);
        expected.sort_unstable();
        values.sort_unstable();
        prop_assert_eq!(values, expected);
    }

    /// Distinct pairs are distinct and in range for any n >= 2.
    #[test]
    fn distinct_pair_properties(seed in any::<u64>(), n in 2usize..10_000) {
        let mut stream = StreamFactory::new(seed).stream(3, 0);
        let (a, b) = sample_distinct_pair(n, &mut stream);
        prop_assert_ne!(a, b);
        prop_assert!(a < n && b < n);
    }

    /// Binomial samples are always within [0, n], including the degenerate probabilities.
    #[test]
    fn binomial_support(seed in any::<u64>(), n in 0u64..500, p in 0.0f64..=1.0) {
        let mut stream = StreamFactory::new(seed).stream(4, 0);
        let sample = Binomial::new(n, p).sample(&mut stream);
        prop_assert!(sample <= n);
    }

    /// The alias table only ever returns outcomes with positive weight.
    #[test]
    fn alias_table_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..10.0, 1..50),
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let table = AliasTable::new(&weights);
        let mut stream = StreamFactory::new(seed).stream(5, 0);
        for _ in 0..200 {
            let outcome = table.sample(&mut stream);
            prop_assert!(outcome < weights.len());
            // Zero-weight outcomes must never be drawn... except through floating-point
            // renormalisation noise, which the construction explicitly avoids: a zero
            // weight yields prob 0 and can only be reached via an alias, which always
            // points at a positive-weight outcome.
            prop_assert!(weights[outcome] > 0.0);
        }
    }
}
