//! Key-mixing: derive independent stream keys from (seed, entity, round) triples.
//!
//! The simulator identifies every random decision point by a small tuple — typically
//! `(experiment seed, client id, round)` or `(experiment seed, client id, ball index,
//! round)`. [`mix3`] and [`mix4`] hash such tuples into a single 64-bit key with good
//! avalanche behaviour so that "adjacent" tuples (same client, consecutive rounds) yield
//! unrelated streams.

use crate::splitmix::SplitMix64;

/// Distinct odd constants used to separate the tuple positions before scrambling.
const C1: u64 = 0x9E3779B97F4A7C15;
const C2: u64 = 0xC2B2AE3D27D4EB4F;
const C3: u64 = 0x165667B19E3779F9;

/// Mixes three 64-bit words into one well-scrambled 64-bit key.
///
/// The construction is three rounds of SplitMix64's finalizer interleaved with
/// position-dependent multiplications; it is *not* cryptographic, but collisions between
/// the tuples that occur in a single experiment (at most a few billion) are vanishingly
/// unlikely and, more importantly, nearby tuples produce statistically unrelated keys.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = SplitMix64::scramble(a.wrapping_mul(C1) ^ 0x51_7C_C1_B7_27_22_0A_95);
    h = SplitMix64::scramble(h ^ b.wrapping_mul(C2));
    h = SplitMix64::scramble(h ^ c.wrapping_mul(C3));
    h
}

/// Mixes four 64-bit words into one key. See [`mix3`].
#[inline]
pub fn mix4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    SplitMix64::scramble(mix3(a, b, c) ^ d.wrapping_mul(C1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn order_matters() {
        assert_ne!(mix3(1, 2, 3), mix3(3, 2, 1));
        assert_ne!(mix3(1, 2, 3), mix3(2, 1, 3));
        assert_ne!(mix4(1, 2, 3, 4), mix4(4, 3, 2, 1));
    }

    #[test]
    fn no_collisions_on_dense_grid() {
        // All (entity, round) pairs for a small experiment must map to distinct keys.
        let mut seen = HashSet::new();
        for entity in 0..2000u64 {
            for round in 0..50u64 {
                assert!(
                    seen.insert(mix3(0xABCD, entity, round)),
                    "collision at ({entity},{round})"
                );
            }
        }
    }

    #[test]
    fn single_bit_input_change_avalanches() {
        let base = mix3(7, 11, 13);
        for bit in 0..64 {
            let flipped = mix3(7 ^ (1 << bit), 11, 13);
            let dist = (base ^ flipped).count_ones();
            assert!(dist >= 12, "weak avalanche on bit {bit}: {dist}");
        }
    }

    #[test]
    fn mix4_differs_from_mix3_extension() {
        // Appending a zero word must still change the key (domain separation).
        assert_ne!(mix4(1, 2, 3, 0), mix3(1, 2, 3));
    }
}
