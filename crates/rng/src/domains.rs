//! Central registry of [`StreamFactory`](crate::StreamFactory) domain tags.
//!
//! A domain tag separates the RNG streams of one subsystem from every other
//! subsystem that derives streams from the *same experiment seed*. Two subsystems
//! that accidentally share a tag draw **correlated** randomness — a graph generator
//! and a protocol reusing a tag would silently couple topology and routing choices,
//! corrupting results in a way no determinism test can see (the run is still
//! bit-reproducible, just statistically wrong).
//!
//! Every domain tag in the workspace therefore lives *here and only here*, so that
//! pairwise distinctness is a single local property. The rule is enforced twice:
//!
//! * dynamically, by the [`are_distinct`] unit test below, and
//! * statically, by `clb-audit` (`cargo run -p clb-audit`), whose `rng-domain` rule
//!   rejects `const *_DOMAIN` declarations outside this file and
//!   `StreamFactory::domain(...)` arguments that do not name a registered constant.
//!
//! To add a subsystem: declare its `pub const *_DOMAIN: u64` here with a fresh
//! value, append it to [`ALL`], and import it at the use site
//! (`use clb_rng::domains::MY_DOMAIN;`). See `docs/DETERMINISM.md` for the full
//! contract.

/// The implicit domain of [`StreamFactory::new`](crate::StreamFactory::new) before
/// [`domain`](crate::StreamFactory::domain) is called. Reserved so no subsystem can
/// register a tag that collides with "forgot to pick a domain".
pub const DEFAULT_DOMAIN: u64 = 0;

/// Protocol execution (ball picks and server decisions) in `clb-engine`.
pub const PROTOCOL_DOMAIN: u64 = 0x70726f74; // "prot"

/// Per-client demand realisation (`Demand::UniformAtMost`) in `clb-engine`.
pub const DEMAND_DOMAIN: u64 = 0x64656d; // "dem"

/// Degree-sequence sampling for almost-regular graphs in `clb-graph`.
pub const DEGREE_DOMAIN: u64 = 0x6465_6772_6565; // "degree"

/// The configuration-model stub matching in `clb-graph` (the substrate every
/// random generator builds on).
pub const GENERATOR_DOMAIN: u64 = 0x67_7261_7068; // "graph"

/// Cluster-topology wiring (`trust_clusters`) in `clb-graph`.
pub const CLUSTER_DOMAIN: u64 = 0x636c7573; // "clus"

/// Erdős–Rényi edge sampling in `clb-graph`.
pub const ER_DOMAIN: u64 = 0x6572_6e64; // "ernd"

/// Geometric (proximity) topology sampling in `clb-graph`.
pub const GEO_DOMAIN: u64 = 0x67656f; // "geo"

/// Fault-injection draws (crash/lie/loss/straggler membership and per-round coin
/// flips) in `clb-faults`, distinct from protocol execution so faults never
/// correlate with ball routing.
pub const FAULT_DOMAIN: u64 = 0x666c_7473; // "flts"

/// The sequential Greedy baseline (Kenthapadi–Panigrahy) in `clb-sequential`.
pub const SEQ_DOMAIN: u64 = 0x736571; // "seq"

/// Online-workload ball arrivals (per-round counts and per-ball owner picks) in
/// `clb-engine`, distinct from protocol execution so the traffic process never
/// correlates with routing.
pub const ARRIVAL_DOMAIN: u64 = 0x61727276; // "arrv"

/// Online-workload service-time draws (one stream per ball) in `clb-engine`.
pub const SERVICE_DOMAIN: u64 = 0x73727663; // "srvc"

/// Every registered domain tag with its name, in declaration order. The audit and
/// the distinctness test below both read this table; keep it in sync with the
/// constants (a mismatch fails [`all_constants_are_registered`]).
pub const ALL: &[(&str, u64)] = &[
    ("DEFAULT_DOMAIN", DEFAULT_DOMAIN),
    ("PROTOCOL_DOMAIN", PROTOCOL_DOMAIN),
    ("DEMAND_DOMAIN", DEMAND_DOMAIN),
    ("DEGREE_DOMAIN", DEGREE_DOMAIN),
    ("GENERATOR_DOMAIN", GENERATOR_DOMAIN),
    ("CLUSTER_DOMAIN", CLUSTER_DOMAIN),
    ("ER_DOMAIN", ER_DOMAIN),
    ("GEO_DOMAIN", GEO_DOMAIN),
    ("FAULT_DOMAIN", FAULT_DOMAIN),
    ("SEQ_DOMAIN", SEQ_DOMAIN),
    ("ARRIVAL_DOMAIN", ARRIVAL_DOMAIN),
    ("SERVICE_DOMAIN", SERVICE_DOMAIN),
];

/// Returns `Err((name_a, name_b))` for the first pair of registered domains that
/// share a tag value, `Ok(())` when all tags are pairwise distinct.
pub fn are_distinct() -> Result<(), (&'static str, &'static str)> {
    for (i, &(name_a, value_a)) in ALL.iter().enumerate() {
        for &(name_b, value_b) in &ALL[i + 1..] {
            if value_a == value_b {
                return Err((name_a, name_b));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_domains_are_pairwise_distinct() {
        if let Err((a, b)) = are_distinct() {
            panic!("domain tags {a} and {b} collide; streams derived from the same seed would correlate");
        }
    }

    #[test]
    fn all_constants_are_registered() {
        // The table is the registry of record; a constant missing from it would
        // escape both the distinctness check above and the static audit.
        let names: Vec<&str> = ALL.iter().map(|&(name, _)| name).collect();
        for required in [
            "DEFAULT_DOMAIN",
            "PROTOCOL_DOMAIN",
            "DEMAND_DOMAIN",
            "DEGREE_DOMAIN",
            "GENERATOR_DOMAIN",
            "CLUSTER_DOMAIN",
            "ER_DOMAIN",
            "GEO_DOMAIN",
            "FAULT_DOMAIN",
            "SEQ_DOMAIN",
            "ARRIVAL_DOMAIN",
            "SERVICE_DOMAIN",
        ] {
            assert!(names.contains(&required), "{required} missing from ALL");
        }
        assert_eq!(ALL.len(), 12, "update this test when registering a domain");
    }

    #[test]
    fn default_domain_is_the_factory_default() {
        use crate::{RandomSource, StreamFactory};
        let f = StreamFactory::new(99);
        let mut implicit = f.stream(1, 2);
        let mut explicit = f.domain(DEFAULT_DOMAIN).stream(1, 2);
        assert_eq!(implicit.next_u64(), explicit.next_u64());
    }
}
