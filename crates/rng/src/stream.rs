//! Per-entity, per-round random streams.
//!
//! A [`StreamFactory`] holds the experiment seed; [`StreamFactory::stream`] derives an
//! independent [`Stream`] for any `(entity, round)` pair, and
//! [`StreamFactory::stream3`] for `(entity, sub_entity, round)` triples (e.g. one stream
//! per ball of a client). Streams are cheap to create (a few dozen ALU ops), so the
//! engine simply re-derives them on demand inside parallel loops instead of storing them.

use crate::{mix::mix4, xoshiro::Xoshiro256PlusPlus, RandomSource};
use serde::{Deserialize, Serialize};

/// A single deterministic random stream (thin wrapper over Xoshiro256++).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stream {
    inner: Xoshiro256PlusPlus,
}

impl Stream {
    /// Creates a stream directly from a 64-bit key.
    pub fn from_key(key: u64) -> Self {
        Self {
            inner: Xoshiro256PlusPlus::new(key),
        }
    }
}

impl RandomSource for Stream {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Derives independent [`Stream`]s from a single experiment seed.
///
/// The factory is `Copy` and trivially shareable across rayon tasks; deriving a stream
/// does not mutate it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamFactory {
    seed: u64,
    /// Domain tag separating different *uses* of the same seed (e.g. graph generation
    /// vs. protocol execution) so they never share streams.
    domain: u64,
}

impl StreamFactory {
    /// Creates a factory for the given experiment seed in the default domain.
    pub fn new(seed: u64) -> Self {
        Self { seed, domain: 0 }
    }

    /// Returns a factory with the same seed but a different domain tag.
    ///
    /// Use one domain per independent subsystem (graph generator, each protocol run,
    /// workload generator, ...) so that reusing the experiment seed across subsystems
    /// never correlates their choices.
    pub fn domain(&self, domain: u64) -> Self {
        Self {
            seed: self.seed,
            domain,
        }
    }

    /// The experiment seed this factory was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the stream for `(entity, round)`.
    pub fn stream(&self, entity: u64, round: u64) -> Stream {
        Stream::from_key(mix4(self.seed, self.domain, entity, round))
    }

    /// Derives the stream for `(entity, sub_entity, round)`; e.g. one stream per ball.
    pub fn stream3(&self, entity: u64, sub_entity: u64, round: u64) -> Stream {
        let folded = entity.rotate_left(32) ^ sub_entity.wrapping_mul(0xA24BAED4963EE407);
        Stream::from_key(mix4(self.seed, self.domain, folded, round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_triple_same_stream() {
        let f = StreamFactory::new(11);
        let mut a = f.stream(3, 9);
        let mut b = f.stream(3, 9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_round_different_stream() {
        let f = StreamFactory::new(11);
        let mut a = f.stream(3, 9);
        let mut b = f.stream(3, 10);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_entity_different_stream() {
        let f = StreamFactory::new(11);
        let mut a = f.stream(3, 9);
        let mut b = f.stream(4, 9);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn domains_are_isolated() {
        let f = StreamFactory::new(11);
        let mut a = f.domain(1).stream(3, 9);
        let mut b = f.domain(2).stream(3, 9);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream3_separates_sub_entities() {
        let f = StreamFactory::new(77);
        let mut a = f.stream3(5, 0, 1);
        let mut b = f.stream3(5, 1, 1);
        assert_ne!(a.next_u64(), b.next_u64());
        // And is distinct from the 2-argument variant for the same entity/round.
        let mut c = f.stream(5, 1);
        let mut d = f.stream3(5, 0, 1);
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn factory_is_copy_and_stateless() {
        let f = StreamFactory::new(42);
        let g = f; // Copy
        let mut a = f.stream(1, 1);
        let mut b = g.stream(1, 1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_from_adjacent_entities_are_uncorrelated() {
        // Crude correlation check: average XOR popcount between the two streams should
        // be close to 32 (the expectation for independent uniform words).
        let f = StreamFactory::new(2020);
        let mut a = f.stream(100, 0);
        let mut b = f.stream(101, 0);
        let n = 4096;
        let total: u32 = (0..n)
            .map(|_| (a.next_u64() ^ b.next_u64()).count_ones())
            .sum();
        let avg = total as f64 / n as f64;
        assert!(
            (avg - 32.0).abs() < 1.0,
            "popcount average {avg} too far from 32"
        );
    }
}
