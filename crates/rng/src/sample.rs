//! Sampling utilities built on [`RandomSource`].
//!
//! Everything the graph generators and protocols need: uniform index selection (already
//! on the trait), Fisher-Yates shuffles, Floyd's distinct-subset sampling, reservoir
//! sampling, Bernoulli/geometric/binomial draws, and an alias table for arbitrary
//! discrete distributions (used by the skewed-degree graph generators).

use crate::RandomSource;

/// Shuffles `slice` in place with the Fisher-Yates algorithm.
pub fn shuffle<T, R: RandomSource>(slice: &mut [T], rng: &mut R) {
    let n = slice.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.gen_index(i + 1);
        slice.swap(i, j);
    }
}

/// Samples `k` distinct values from `0..n` using Floyd's algorithm.
///
/// Runs in `O(k)` expected time and `O(k)` space regardless of `n`. The returned vector
/// is in insertion order (not sorted, not uniform-random order). Panics if `k > n`.
pub fn floyd_sample<R: RandomSource>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(
        k <= n,
        "cannot sample {k} distinct values from a universe of {n}"
    );
    // For small universes a partial Fisher-Yates is cheaper and avoids the hash set.
    if k * 4 >= n {
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.gen_index(n - i);
            all.swap(i, j);
        }
        all.truncate(k);
        return all;
    }
    // Membership-only collision check; `out` preserves the draw order.
    // clb-audit: allow(unordered-collection) -- membership-only collision check
    let mut chosen = std::collections::HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_index(j + 1);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

/// Samples two *distinct* indices uniformly from `0..n`. Panics if `n < 2`.
///
/// This is the "choose a pair of servers" primitive of the sequential Greedy baseline
/// (Kenthapadi–Panigrahy).
pub fn sample_distinct_pair<R: RandomSource>(n: usize, rng: &mut R) -> (usize, usize) {
    assert!(
        n >= 2,
        "need at least two elements to sample a distinct pair"
    );
    let a = rng.gen_index(n);
    let mut b = rng.gen_index(n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

/// Reservoir-samples `k` items from an iterator of unknown length (Algorithm R).
///
/// Returns fewer than `k` items if the iterator is shorter than `k`.
pub fn reservoir_sample<T, I, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: RandomSource,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_index(i + 1);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// A Bernoulli draw with fixed success probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution; finite `p` is clamped into `[0, 1]`.
    ///
    /// # Panics
    /// Panics on a non-finite `p`: `f64::clamp` passes NaN straight through, so a
    /// NaN probability would silently skew every draw instead of erroring.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite(),
            "bernoulli success probability must be finite, got {p}"
        );
        Self {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draws one sample.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }
}

/// A geometric distribution counting the number of failures before the first success.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics on `p` outside `(0, 1]` — including NaN, which fails the range check
    /// but deserves its own message so the caller sees *what* was wrong.
    pub fn new(p: f64) -> Self {
        assert!(
            p.is_finite(),
            "geometric success probability must be finite, got {p}"
        );
        assert!(
            p > 0.0 && p <= 1.0,
            "geometric success probability must be in (0,1]"
        );
        Self { p }
    }

    /// Draws one sample via inversion: `floor(ln U / ln(1-p))`.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        let u = loop {
            let u = rng.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

/// A binomial distribution `Bin(n, p)`.
///
/// Sampling is exact: direct Bernoulli summation for small `n·min(p,1-p)`, otherwise the
/// inversion-by-counting method on the geometric waiting times (BG algorithm), which is
/// `O(np)` expected — fine for the simulator's workload sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution; finite `p` is clamped into `[0, 1]`.
    ///
    /// # Panics
    /// Panics on a non-finite `p`: `f64::clamp` passes NaN straight through, so a
    /// NaN probability would silently skew sampling instead of erroring.
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            p.is_finite(),
            "binomial success probability must be finite, got {p}"
        );
        Self {
            n,
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Draws one sample.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> u64 {
        if self.p <= 0.0 || self.n == 0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        // Work with q = min(p, 1-p) and mirror at the end.
        let flipped = self.p > 0.5;
        let q = if flipped { 1.0 - self.p } else { self.p };
        let count = if (self.n as f64) * q < 64.0 {
            // Geometric-gaps method: expected number of iterations is n*q + 1.
            let geo = Geometric::new(q);
            let mut successes = 0u64;
            let mut position = 0u64;
            loop {
                let gap = geo.sample(rng);
                position = position.saturating_add(gap).saturating_add(1);
                if position > self.n {
                    break;
                }
                successes += 1;
            }
            successes
        } else {
            // Direct summation in blocks; n*q is large but our n stays ≤ a few million.
            let mut successes = 0u64;
            for _ in 0..self.n {
                if rng.gen_bool(q) {
                    successes += 1;
                }
            }
            successes
        };
        if flipped {
            self.n - count
        } else {
            count
        }
    }
}

/// A Poisson distribution with rate `lambda`.
///
/// Sampling uses Knuth's multiplication method (expected `O(lambda)` per draw),
/// exact and allocation-free — the online arrival rates this serves stay small
/// (tens of balls per round), so the linear cost is negligible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda >= 0`.
    ///
    /// # Panics
    /// Panics on a non-finite or negative rate.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "poisson rate must be finite and non-negative, got {lambda}"
        );
        Self { lambda }
    }

    /// Rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: RandomSource>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 0.0 {
            return 0;
        }
        // Knuth: multiply uniforms until the product drops below e^-lambda. For
        // large rates, split into chunks of 16 so e^-lambda never underflows.
        let mut remaining = self.lambda;
        let mut count = 0u64;
        while remaining > 0.0 {
            let chunk = remaining.min(16.0);
            remaining -= chunk;
            let threshold = (-chunk).exp();
            let mut product = 1.0f64;
            loop {
                product *= rng.next_f64();
                if product <= threshold {
                    break;
                }
                count += 1;
            }
        }
        count
    }
}

/// Walker's alias method for sampling from an arbitrary discrete distribution in O(1).
pub mod alias {
    use crate::RandomSource;

    /// A pre-built alias table over `weights.len()` outcomes.
    #[derive(Debug, Clone)]
    pub struct AliasTable {
        prob: Vec<f64>,
        alias: Vec<usize>,
    }

    impl AliasTable {
        /// Builds the table from non-negative weights (not necessarily normalised).
        ///
        /// Panics if the weights are empty, contain a negative/NaN entry, or all weights
        /// are zero.
        pub fn new(weights: &[f64]) -> Self {
            assert!(
                !weights.is_empty(),
                "alias table needs at least one outcome"
            );
            assert!(
                weights.iter().all(|w| w.is_finite() && *w >= 0.0),
                "alias table weights must be finite and non-negative"
            );
            let total: f64 = weights.iter().sum();
            assert!(
                total > 0.0,
                "alias table needs at least one positive weight"
            );
            let n = weights.len();
            let scale = n as f64 / total;
            let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
            let mut alias = vec![0usize; n];
            let mut small: Vec<usize> = Vec::new();
            let mut large: Vec<usize> = Vec::new();
            for (i, &p) in prob.iter().enumerate() {
                if p < 1.0 {
                    small.push(i);
                } else {
                    large.push(i);
                }
            }
            while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
                small.pop();
                alias[s] = l;
                prob[l] = (prob[l] + prob[s]) - 1.0;
                if prob[l] < 1.0 {
                    large.pop();
                    small.push(l);
                }
            }
            // Remaining entries are 1 up to floating point error.
            for &i in small.iter().chain(large.iter()) {
                prob[i] = 1.0;
            }
            Self { prob, alias }
        }

        /// Number of outcomes.
        pub fn len(&self) -> usize {
            self.prob.len()
        }

        /// True if the table has no outcomes (never true for a constructed table).
        pub fn is_empty(&self) -> bool {
            self.prob.is_empty()
        }

        /// Draws one outcome index.
        pub fn sample<R: RandomSource>(&self, rng: &mut R) -> usize {
            let i = rng.gen_index(self.prob.len());
            if rng.next_f64() < self.prob[i] {
                i
            } else {
                self.alias[i]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xDEADBEEF)
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng();
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut r = rng();
        let mut empty: Vec<u8> = vec![];
        shuffle(&mut empty, &mut r);
        let mut single = vec![42];
        shuffle(&mut single, &mut r);
        assert_eq!(single, vec![42]);
    }

    #[test]
    fn shuffle_actually_permutes_most_of_the_time() {
        let mut r = rng();
        let original: Vec<u32> = (0..64).collect();
        let mut unchanged = 0;
        for _ in 0..50 {
            let mut v = original.clone();
            shuffle(&mut v, &mut r);
            if v == original {
                unchanged += 1;
            }
        }
        assert!(
            unchanged <= 1,
            "shuffle left the slice untouched {unchanged}/50 times"
        );
    }

    #[test]
    fn floyd_sample_is_distinct_and_in_range() {
        let mut r = rng();
        for (n, k) in [(10, 10), (100, 5), (1000, 999), (1, 0), (50, 25)] {
            let s = floyd_sample(n, k, &mut r);
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|&x| x < n));
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "duplicates in sample of {k} from {n}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn floyd_sample_rejects_oversized_k() {
        let mut r = rng();
        let _ = floyd_sample(3, 4, &mut r);
    }

    #[test]
    fn floyd_sample_covers_the_universe() {
        // Every element should appear in some sample over many repetitions.
        let mut r = rng();
        let n = 20;
        let mut seen = vec![false; n];
        for _ in 0..500 {
            for x in floyd_sample(n, 3, &mut r) {
                seen[x] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn distinct_pair_is_distinct() {
        let mut r = rng();
        for _ in 0..10_000 {
            let (a, b) = sample_distinct_pair(7, &mut r);
            assert_ne!(a, b);
            assert!(a < 7 && b < 7);
        }
        let (a, b) = sample_distinct_pair(2, &mut r);
        assert_ne!(a, b);
    }

    #[test]
    fn reservoir_sample_sizes() {
        let mut r = rng();
        assert_eq!(reservoir_sample(0..100, 10, &mut r).len(), 10);
        assert_eq!(reservoir_sample(0..5, 10, &mut r).len(), 5);
        assert!(reservoir_sample(0..100, 0, &mut r).is_empty());
    }

    #[test]
    fn reservoir_sample_is_roughly_uniform() {
        let mut r = rng();
        let n = 20usize;
        let k = 5usize;
        let reps = 20_000;
        let mut counts = vec![0u32; n];
        for _ in 0..reps {
            for x in reservoir_sample(0..n, k, &mut r) {
                counts[x] += 1;
            }
        }
        let expected = (reps * k) as f64 / n as f64;
        for &c in &counts {
            assert!(((c as f64 - expected) / expected).abs() < 0.08);
        }
    }

    #[test]
    fn bernoulli_mean_matches() {
        let mut r = rng();
        let b = Bernoulli::new(0.3);
        let n = 100_000;
        let hits = (0..n).filter(|_| b.sample(&mut r)).count();
        let mean = hits as f64 / n as f64;
        assert!((mean - 0.3).abs() < 0.01);
        assert_eq!(Bernoulli::new(1.5).p(), 1.0);
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = rng();
        let p = 0.25;
        let g = Geometric::new(p);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| g.sample(&mut r)).sum();
        let mean = total as f64 / n as f64;
        let expected = (1.0 - p) / p; // failures before first success
        assert!(
            (mean - expected).abs() < 0.1,
            "mean {mean} vs expected {expected}"
        );
        assert_eq!(Geometric::new(1.0).sample(&mut r), 0);
    }

    #[test]
    fn binomial_mean_and_bounds() {
        let mut r = rng();
        for (n, p) in [(50u64, 0.1), (200, 0.5), (1000, 0.9), (10, 0.0), (10, 1.0)] {
            let b = Binomial::new(n, p);
            let reps = 20_000;
            let mut total = 0u64;
            for _ in 0..reps {
                let x = b.sample(&mut r);
                assert!(x <= n);
                total += x;
            }
            let mean = total as f64 / reps as f64;
            let expected = n as f64 * p;
            let sigma = (n as f64 * p * (1.0 - p)).sqrt();
            assert!(
                (mean - expected).abs() <= 4.0 * sigma.max(0.02),
                "Bin({n},{p}): mean {mean} vs {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bernoulli success probability must be finite")]
    fn bernoulli_rejects_nan() {
        let _ = Bernoulli::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "bernoulli success probability must be finite")]
    fn bernoulli_rejects_infinity() {
        let _ = Bernoulli::new(f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "geometric success probability must be finite")]
    fn geometric_rejects_nan() {
        let _ = Geometric::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "binomial success probability must be finite")]
    fn binomial_rejects_nan() {
        let _ = Binomial::new(10, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "binomial success probability must be finite")]
    fn binomial_rejects_negative_infinity() {
        let _ = Binomial::new(10, f64::NEG_INFINITY);
    }

    #[test]
    fn finite_out_of_range_p_still_clamps() {
        // The finite-clamping contract predates the NaN fix and must survive it.
        assert_eq!(Bernoulli::new(-0.5).p(), 0.0);
        assert_eq!(Bernoulli::new(1.5).p(), 1.0);
        let mut r = rng();
        assert_eq!(Binomial::new(5, 2.0).sample(&mut r), 5);
        assert_eq!(Binomial::new(5, -1.0).sample(&mut r), 0);
    }

    #[test]
    fn poisson_mean_matches() {
        let mut r = rng();
        for lambda in [0.5f64, 3.0, 40.0] {
            let p = Poisson::new(lambda);
            let reps = 20_000;
            let total: u64 = (0..reps).map(|_| p.sample(&mut r)).sum();
            let mean = total as f64 / reps as f64;
            let sigma = lambda.sqrt();
            assert!(
                (mean - lambda).abs() <= 4.0 * sigma / (reps as f64).sqrt() + 0.05,
                "Poisson({lambda}): mean {mean}"
            );
        }
        assert_eq!(Poisson::new(0.0).sample(&mut r), 0);
        assert_eq!(Poisson::new(0.0).lambda(), 0.0);
    }

    #[test]
    #[should_panic(expected = "poisson rate must be finite and non-negative")]
    fn poisson_rejects_nan() {
        let _ = Poisson::new(f64::NAN);
    }

    #[test]
    fn alias_table_matches_weights() {
        let mut r = rng();
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = alias::AliasTable::new(&weights);
        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
        let reps = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..reps {
            counts[table.sample(&mut r)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = reps as f64 * w / total;
            let rel = (counts[i] as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "outcome {i}: {counts:?} vs expected {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one positive weight")]
    fn alias_table_rejects_all_zero() {
        let _ = alias::AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn alias_table_rejects_empty() {
        let _ = alias::AliasTable::new(&[]);
    }

    #[test]
    fn cross_check_uniformity_against_independent_lcg_chisquare() {
        // Independent sanity check of gen_index uniformity. The bucket count is picked
        // by a plain LCG (Knuth's MMIX constants) that shares no state or structure
        // with the generators under test, keeping the test honest without depending on
        // this crate for the bucket choice.
        let lcg = 0x5851_F42D_4C95_7F2Du64
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0x1442_6952_1FD3_AAAD);
        let bound = 16 + (lcg >> 33) as usize % 16;
        let mut r = rng();
        let draws = 64_000;
        let mut counts = vec![0u32; bound];
        for _ in 0..draws {
            counts[r.gen_index(bound)] += 1;
        }
        let expected = draws as f64 / bound as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // dof = bound-1 ≤ 31; chi2 above 80 would be a catastrophic non-uniformity.
        assert!(
            chi2 < 80.0,
            "chi-square {chi2} too large for {bound} buckets"
        );
    }
}
