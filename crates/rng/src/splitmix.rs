//! SplitMix64: a tiny, fast, well-distributed 64-bit generator.
//!
//! SplitMix64 (Steele, Lea & Flood, 2014) walks a 64-bit counter by the golden-gamma
//! constant and scrambles it with two xor-shift-multiply rounds. Its main role here is
//! (1) seeding [`crate::Xoshiro256PlusPlus`] state from a single 64-bit seed and
//! (2) serving as the key-mixing primitive in [`crate::mix::mix3`].

use crate::RandomSource;
use serde::{Deserialize, Serialize};

/// The SplitMix64 generator. The entire state is one 64-bit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

/// Golden-gamma increment: 2^64 / φ rounded to odd.
pub const GOLDEN_GAMMA: u64 = 0x9E3779B97F4A7C15;

impl SplitMix64 {
    /// Creates a generator whose first outputs are determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the raw internal counter (useful for serialization and debugging).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Finalization function of SplitMix64; also usable as a standalone 64-bit hash.
    #[inline]
    pub fn scramble(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl RandomSource for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        SplitMix64::scramble(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 1234567, from the public-domain reference C
    /// implementation by Sebastiano Vigna.
    #[test]
    fn matches_reference_vector() {
        let mut g = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn distinct_seeds_diverge_immediately() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn deterministic_replay() {
        let mut a = SplitMix64::new(99);
        let first: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let mut b = SplitMix64::new(99);
        let second: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn scramble_is_not_identity_and_spreads_bits() {
        // A single-bit input difference should flip roughly half of the output bits.
        let a = SplitMix64::scramble(0x1);
        let b = SplitMix64::scramble(0x3);
        let flipped = (a ^ b).count_ones();
        assert!(flipped > 16, "avalanche too weak: {flipped} bits flipped");
    }

    #[test]
    fn serde_round_trip_preserves_state() {
        let mut g = SplitMix64::new(7);
        let _ = g.next_u64();
        let json = serde_json_like(&g);
        // Minimal check without serde_json: state accessor survives a copy.
        let copy = g;
        assert_eq!(copy.state(), g.state());
        assert!(!json.is_empty());
    }

    fn serde_json_like(g: &SplitMix64) -> String {
        format!("{{\"state\":{}}}", g.state())
    }
}
