//! Splittable, deterministic random number streams for the `constrained-lb` simulator.
//!
//! The protocols studied in the paper (SAER, RAES and their baselines) are *symmetric*
//! and *non-adaptive*: every client picks destination servers independently and
//! uniformly at random in every round. When the simulator executes a round in parallel
//! (one rayon task per client, or per ball), the results must not depend on which thread
//! happened to run first. We achieve this by deriving an **independent random stream per
//! logical entity and round** from a single experiment seed:
//!
//! ```text
//! stream(seed, entity_id, round) = Xoshiro256++ seeded by SplitMix64(mix(seed, entity_id, round))
//! ```
//!
//! Two executions with the same seed produce bit-identical traces regardless of the
//! number of rayon worker threads, and two distinct `(entity, round)` pairs get streams
//! that are statistically independent for all practical purposes.
//!
//! The crate deliberately implements its own small generators (SplitMix64 and
//! Xoshiro256++) instead of relying on `rand`'s: the generators are part of the
//! reproducibility contract of the simulator and must never change behaviour when a
//! dependency is upgraded. `rand` is only used in tests as an independent cross-check.
//!
//! # Quick example
//!
//! ```
//! use clb_rng::{RandomSource, Stream, StreamFactory};
//!
//! let factory = StreamFactory::new(0xC0FFEE);
//! // Client 42 choosing a uniform neighbour index among 100 in round 3:
//! let mut stream: Stream = factory.stream(42, 3);
//! let idx = stream.gen_index(100);
//! assert!(idx < 100);
//! // The same (seed, entity, round) triple always yields the same draw.
//! let mut replay = StreamFactory::new(0xC0FFEE).stream(42, 3);
//! assert_eq!(replay.gen_index(100), idx);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domains;
pub mod mix;
pub mod sample;
pub mod splitmix;
pub mod stream;
pub mod xoshiro;

pub use mix::mix3;
pub use sample::{
    alias::AliasTable, floyd_sample, reservoir_sample, sample_distinct_pair, shuffle, Bernoulli,
    Binomial, Geometric, Poisson,
};
pub use splitmix::SplitMix64;
pub use stream::{Stream, StreamFactory};
pub use xoshiro::Xoshiro256PlusPlus;

/// A trait for anything that can produce uniformly distributed 64-bit words.
///
/// This is the minimal interface the sampling utilities in [`sample`] build on.
/// Both [`SplitMix64`] and [`Xoshiro256PlusPlus`] implement it.
pub trait RandomSource {
    /// Returns the next 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    ///
    /// Uses the upper 53 bits of the next word, which yields every representable
    /// multiple of 2^-53 in the unit interval with equal probability.
    fn next_f64(&mut self) -> f64 {
        // 53 bits of mantissa precision.
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        ((self.next_u64() >> 11) as f64) * SCALE
    }

    /// Returns a uniformly distributed index in `[0, bound)` using Lemire's
    /// nearly-divisionless method. `bound` must be non-zero.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        let bound = bound as u64;
        // Lemire, "Fast Random Integer Generation in an Interval" (2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }

    /// Returns a uniform `u64` in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "gen_range_u64: lo must not exceed hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_index((span + 1) as usize) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RandomSource for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            self.0
        }
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut c = Counter(0);
        for _ in 0..10_000 {
            let x = c.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_index_respects_bound() {
        let mut c = Counter(123);
        for bound in [1usize, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..1000 {
                assert!(c.gen_index(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_index_zero_bound_panics() {
        let mut c = Counter(1);
        let _ = c.gen_index(0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut c = Counter(7);
        assert!(c.gen_bool(1.0));
        assert!(!c.gen_bool(0.0));
        assert!(c.gen_bool(2.0));
        assert!(!c.gen_bool(-1.0));
    }

    #[test]
    fn gen_range_inclusive_bounds() {
        let mut c = Counter(99);
        for _ in 0..1000 {
            let v = c.gen_range_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(c.gen_range_u64(5, 5), 5);
    }

    #[test]
    fn gen_index_is_roughly_uniform() {
        let mut c = SplitMix64::new(42);
        let bound = 10usize;
        let mut counts = vec![0u32; bound];
        let draws = 100_000;
        for _ in 0..draws {
            counts[c.gen_index(bound)] += 1;
        }
        let expected = draws as f64 / bound as f64;
        for &count in &counts {
            let rel = (count as f64 - expected).abs() / expected;
            assert!(
                rel < 0.05,
                "bucket deviates more than 5%: {count} vs {expected}"
            );
        }
    }
}
