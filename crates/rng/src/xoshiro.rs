//! Xoshiro256++: the workhorse generator behind every per-entity stream.
//!
//! Xoshiro256++ (Blackman & Vigna, 2019) has 256 bits of state, passes BigCrush, and is
//! extremely fast — a handful of ALU operations per output word. We seed its four state
//! words from [`SplitMix64`], as recommended by the authors, so a single 64-bit key is
//! enough to start a stream.

use crate::{splitmix::SplitMix64, RandomSource};
use serde::{Deserialize, Serialize};

/// A Xoshiro256++ generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a 64-bit seed by expanding it with SplitMix64.
    ///
    /// The state is guaranteed to be non-zero (an all-zero state is a fixed point of
    /// the xoshiro transition and must never be used).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        loop {
            for word in &mut s {
                *word = sm.next_u64();
            }
            if s.iter().any(|&w| w != 0) {
                break;
            }
        }
        Self { s }
    }

    /// Creates a generator directly from four state words. Panics if all are zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro state must not be all-zero"
        );
        Self { s }
    }

    /// Returns the current state words.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// The `jump` function: advances the stream by 2^128 steps.
    ///
    /// Calling `jump` on copies of the same generator yields 2^128 non-overlapping
    /// subsequences, which is an alternative way to create parallel streams when a
    /// hash-derived key (the default in this crate) is not desirable.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut acc = [0u64; 4];
        for &word in &JUMP {
            for bit in 0..64 {
                if (word & (1u64 << bit)) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RandomSource for Xoshiro256PlusPlus {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the public-domain reference implementation, with the state
    /// initialised to [1, 2, 3, 4].
    #[test]
    fn matches_reference_vector() {
        let mut g = Xoshiro256PlusPlus::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256PlusPlus::from_state([0; 4]);
    }

    #[test]
    fn seeding_never_produces_zero_state() {
        for seed in 0..256 {
            let g = Xoshiro256PlusPlus::new(seed);
            assert!(g.state().iter().any(|&w| w != 0));
        }
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let base = Xoshiro256PlusPlus::new(2024);
        let mut a = base;
        let mut b = base;
        b.jump();
        let a_out: Vec<u64> = (0..512).map(|_| a.next_u64()).collect();
        let b_out: Vec<u64> = (0..512).map(|_| b.next_u64()).collect();
        // The jumped stream must not share a long prefix with the original.
        assert_ne!(a_out, b_out);
        let common = a_out.iter().zip(&b_out).filter(|(x, y)| x == y).count();
        assert!(common < 8, "suspiciously many identical outputs: {common}");
    }

    #[test]
    fn deterministic_replay() {
        let mut a = Xoshiro256PlusPlus::new(5);
        let mut b = Xoshiro256PlusPlus::new(5);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn mean_of_unit_draws_is_near_half() {
        let mut g = Xoshiro256PlusPlus::new(31337);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| g.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
