//! # constrained-lb
//!
//! A faithful, executable reproduction of *"Parallel Load Balancing on Constrained
//! Client-Server Topologies"* (Clementi, Natale, Ziccardi — SPAA 2020): the **SAER**
//! protocol, the **RAES** protocol it derives from, the synchronous distributed model
//! they run in, the topology families the theorems cover, the sequential and parallel
//! baselines of the related work, and an experiment harness that regenerates every
//! quantitative claim of the paper.
//!
//! This crate is the facade: it re-exports the whole stack plus the experiment and
//! scenario-runner layer of `clb-core`, and provides the [`prelude`].
//!
//! ## The stack
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`rng`] (`clb-rng`) | splittable deterministic random streams and sampling utilities |
//! | [`graph`] (`clb-graph`) | bipartite client-server graphs, degree statistics, topology generators |
//! | [`engine`] (`clb-engine`) | the synchronous round engine (model M), the fluent simulation builder, the object-safe `ErasedProtocol` layer, work accounting, observers |
//! | [`protocols`] (`clb-protocols`) | SAER, RAES, threshold and k-choice baselines; `ProtocolSpec` for runtime selection |
//! | [`sequential`] (`clb-sequential`) | sequential one-choice / best-of-k / Godfrey greedy baselines |
//! | [`analysis`] (`clb-analysis`) | the paper's recurrences, bounds and concentration inequalities; statistics |
//! | [`faults`] (`clb-faults`) | deterministic fault injection: crash-stop, lying load reports, message loss, stragglers as a protocol wrapper |
//! | [`experiment`]/[`scenario`] (`clb-core`) | declarative, parallel, seed-reproducible experiments and parameter sweeps |
//!
//! ## Quick start: one simulation
//!
//! ```
//! use clb::prelude::*;
//!
//! let graph = generators::regular_random(512, log2_squared(512), 7).unwrap();
//! let result = Simulation::builder(&graph)
//!     .protocol(Saer::new(8, 2))
//!     .demand(Demand::Constant(2))
//!     .seed(42)
//!     .build()
//!     .run();
//! assert!(result.completed);
//! assert!(result.max_load <= 16); // hard c·d guarantee
//! ```
//!
//! ## Quick start: a parameter sweep
//!
//! ```
//! use clb::prelude::*;
//!
//! // SAER across threshold constants on a Δ = ⌈log²n⌉ regular random graph. Base
//! // seeds stride by 1000 per sweep point so the per-point trial seed ranges stay
//! // disjoint (the runner asserts this — see `clb::scenario`).
//! let scenario = Scenario::new("demo", "c sweep", "rounds shrink as c grows").trials(4);
//! let report = scenario
//!     .run(Sweep::over("c", [4u32, 8]), |idx, &c| {
//!         ExperimentConfig::new(
//!             GraphSpec::RegularLogSquared { n: 512, eta: 1.0 },
//!             ProtocolSpec::Saer { c, d: 2 },
//!         )
//!         .seed(7 + 1000 * idx as u64)
//!     })
//!     .unwrap();
//! for (&c, point) in report.iter() {
//!     assert_eq!(point.completion_rate(), 1.0, "c = {c}");
//!     assert!(point.max_load.max <= (c * 2) as f64);
//!     println!("c = {c}: {:.1} rounds", point.rounds.mean);
//! }
//! ```
//!
//! ## Quick start: a memory-bounded sweep
//!
//! For grids too large to hold every trial outcome in memory, switch the scenario to
//! [`Retention::Summary`]: each outcome folds into mergeable, O(1)-memory
//! accumulators (exact count/mean/std-dev/min/max, histogram-approximate medians)
//! the moment it is produced, in-process and across shard worker processes alike —
//! and the result stays bit-identical at every thread and shard count.
//!
//! ```
//! use clb::prelude::*;
//!
//! let scenario = Scenario::new("demo-s", "summary retention", "flat memory")
//!     .trials(64)
//!     .retention(Retention::Summary);
//! let report = scenario
//!     .run(Sweep::over("c", [4u32]), |idx, &c| {
//!         ExperimentConfig::new(
//!             GraphSpec::Regular { n: 64, delta: 16 },
//!             ProtocolSpec::Saer { c, d: 2 },
//!         )
//!         .seed(7 + 1000 * idx as u64)
//!     })
//!     .unwrap();
//! let point = report.report(0);
//! assert!(point.trials.is_empty());        // outcomes were folded, not collected
//! assert_eq!(point.trial_count, 64);       // ... but fully accounted for
//! assert!(point.completion_rate().is_finite());
//! assert!(point.retained_bytes < 150_000); // flat, however many trials run
//! ```
//!
//! ## Quick start: fault injection
//!
//! Any protocol can be wrapped in a [`FaultPlan`] — crash-stop, lying load reports,
//! message loss, stragglers — without touching the engine. Fault draws come from a
//! dedicated RNG domain keyed by `(server, fault kind, round)`, so a faulted run is
//! exactly as reproducible as a fault-free one: bit-identical across thread counts,
//! shard counts and retention modes. With `paired_seeds`, every sweep point reruns
//! the *same* instances, so the degradation against the fault-free row measures the
//! fault plan and nothing else.
//!
//! ```
//! use clb::prelude::*;
//!
//! let scenario = Scenario::new("demo-f", "crash sweep", "completion degrades gracefully")
//!     .trials(4)
//!     .paired_seeds();
//! let report = scenario
//!     .run(Sweep::over("crash %", [0u32, 40]), |_, &pct| {
//!         let config = ExperimentConfig::new(
//!             GraphSpec::Regular { n: 64, delta: 16 },
//!             ProtocolSpec::Saer { c: 8, d: 2 },
//!         )
//!         .seed(7);
//!         match pct {
//!             0 => config, // genuinely unwrapped baseline
//!             _ => config.faults(FaultPlan::none().crash(1, pct as f64 / 100.0)),
//!         }
//!     })
//!     .unwrap();
//! let (baseline, faulted) = (report.report(0), report.report(1));
//! let degradation = faulted.degradation_vs(baseline);
//! assert!(faulted.surviving_servers.mean < baseline.surviving_servers.mean);
//! assert!(degradation.lost_servers > 0.0);
//! assert!(faulted.max_load.max <= 16.0); // SAER's hard c·d bound survives crashes
//! ```
//!
//! ## The determinism contract
//!
//! Every result above is a pure function of `(seed, config)`: bit-identical across
//! thread counts, shard counts, retention modes and fault plans. The contract is
//! documented in `docs/DETERMINISM.md` and enforced twice — dynamically by the
//! determinism test suites and CI matrix diffs, and statically by `clb-audit`
//! (`cargo run -p clb-audit -- --deny-warnings`), which checks that every RNG
//! domain tag comes from the central `clb_rng::domains` registry, that no
//! result-path code depends on hash-iteration order, wall clocks, or racy relaxed
//! loads, that the shard wire module never panics on malformed frames, and that
//! the wire layout cannot drift without a `WIRE_VERSION` bump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Re-export of `clb-rng`.
pub use clb_rng as rng;

/// Re-export of `clb-graph`.
pub use clb_graph as graph;

/// Re-export of `clb-engine`.
pub use clb_engine as engine;

/// Re-export of `clb-protocols`.
pub use clb_protocols as protocols;

/// Re-export of `clb-sequential`.
pub use clb_sequential as sequential;

/// Re-export of `clb-analysis`.
pub use clb_analysis as analysis;

/// Re-export of `clb-faults`.
pub use clb_faults as faults;

pub use clb_core::{accumulate, experiment, report, scenario, shard};
pub use clb_core::{
    CacheStats, Degradation, ExperimentConfig, ExperimentReport, Measurements, OnlineReport,
    OnlineStats, OutcomeAccumulator, Retention, Scenario, ShardError, ShardPlan, Sweep,
    SweepReport, SweepRow, Table, TrialOutcome,
};
pub use clb_faults::{FaultAdapter, FaultPlan};

/// The most commonly used items, importable with `use clb::prelude::*`.
pub mod prelude {
    pub use clb_analysis::{
        completion_horizon_rounds, linear_fit, min_admissible_degree, required_c_general,
        required_c_regular, Histogram, RunningSummary, StreamingHistogram, Summary,
    };
    pub use clb_core::accumulate::{OutcomeAccumulator, Retention};
    pub use clb_core::experiment::{
        Degradation, ExperimentConfig, ExperimentReport, Measurements, OnlineReport, OnlineStats,
        TrialOutcome,
    };
    pub use clb_core::report::Table;
    pub use clb_core::scenario::{
        default_trials, n_sweep, quick_mode, CacheStats, Scenario, Sweep, SweepReport, SweepRow,
    };
    pub use clb_core::shard::{ShardError, ShardPlan};
    pub use clb_engine::{
        erase, ArrivalProcess, Demand, ErasedProtocol, OnlineWorkload, Protocol, RoundRecord,
        RunResult, ServiceDistribution, SettleRule, SimConfig, Simulation, SimulationBuilder,
    };
    pub use clb_faults::{
        CrashFault, FaultAdapter, FaultPlan, LoadLieFault, MessageLossFault, StragglerFault,
    };
    pub use clb_graph::{generators, log2_squared, BipartiteGraph, DegreeStats, GraphSpec};
    pub use clb_protocols::{Jsq, KChoice, OneShot, ProtocolSpec, Raes, Saer, Threshold};
    pub use clb_sequential::{best_of_k, godfrey_greedy, one_choice, SequentialOutcome};
}
