//! Splittable work descriptions behind the parallel-iterator surface.
//!
//! A [`Producer`] is a finite, index-splittable description of work: the execution
//! engine in `pool.rs` carves one producer into contiguous pieces with
//! [`Producer::split_at`], hands the pieces to pool workers, and each worker drains
//! its piece sequentially through [`Producer::into_seq`]. Because pieces are
//! contiguous index ranges and results are collected back *by piece index*, every
//! order-sensitive driver (`collect`, most importantly) reproduces the sequential
//! order bit-for-bit no matter how the pieces were scheduled.
//!
//! The combinator producers (`map`, `filter`, ...) share their closure across pieces
//! through an [`Arc`], mirroring rayon's `Sync` closure contract: splitting is an
//! `Arc` clone, never a closure clone.

use std::sync::Arc;

/// A splittable, exactly-sized description of parallel work.
///
/// `len` counts *base* items (for `filter`/`flat_map_iter` the produced item count
/// may differ); `split_at(i)` must partition the work so that
/// `head.into_seq().chain(tail.into_seq())` yields exactly what `self.into_seq()`
/// would have — that invariant is what makes parallel `collect` order-preserving.
pub trait Producer: Sized + Send {
    /// The produced item type.
    type Item: Send;
    /// Sequential iterator over one piece.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Number of splittable work units left (exact for indexed sources; an upper
    /// bound on produced items for `filter`/`flat_map_iter`).
    fn len(&self) -> usize;

    /// True if no work units remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `index` work units and the rest.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drains this piece sequentially, in index order.
    fn into_seq(self) -> Self::SeqIter;
}

/// Marker for producers whose `len` is the *exact* produced item count and whose
/// item positions are knowable per piece — mirrors rayon's `IndexedParallelIterator`.
/// `filter`/`flat_map_iter` lose it, which (as in upstream rayon) makes
/// `enumerate`/`zip` after them a compile error rather than a silent renumbering.
pub trait IndexedProducer: Producer {}

impl<T: Sync> IndexedProducer for SliceProducer<'_, T> {}
impl<T: Send> IndexedProducer for SliceMutProducer<'_, T> {}
impl<T: Send> IndexedProducer for ChunksMutProducer<'_, T> {}
impl<T: Send> IndexedProducer for VecProducer<T> {}
impl IndexedProducer for RangeProducer<u64> {}
impl IndexedProducer for RangeProducer<usize> {}
impl<P, F, R> IndexedProducer for MapProducer<P, F>
where
    P: IndexedProducer,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
}
impl<A: IndexedProducer, B: IndexedProducer> IndexedProducer for ZipProducer<A, B> {}
impl<P: IndexedProducer> IndexedProducer for EnumerateProducer<P> {}

/// Carves `producer` into `pieces` contiguous, near-equal parts (sizes differ by at
/// most one), preserving index order.
pub(crate) fn split_into<P: Producer>(mut producer: P, pieces: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(pieces);
    let mut remaining_len = producer.len();
    let mut remaining_pieces = pieces.max(1);
    while remaining_pieces > 1 {
        let take = remaining_len.div_ceil(remaining_pieces);
        let (head, tail) = producer.split_at(take);
        out.push(head);
        producer = tail;
        remaining_len -= take;
        remaining_pieces -= 1;
    }
    out.push(producer);
    out
}

// ---------------------------------------------------------------------------
// Source producers
// ---------------------------------------------------------------------------

/// `&[T]` source (`par_iter`).
pub struct SliceProducer<'a, T> {
    pub(crate) slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(index);
        (Self { slice: head }, Self { slice: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

/// `&mut [T]` source (`par_iter_mut`).
pub struct SliceMutProducer<'a, T> {
    pub(crate) slice: &'a mut [T],
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at_mut(index);
        (Self { slice: head }, Self { slice: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

/// `&mut [T]` in fixed-size chunks (`par_chunks_mut`). One work unit = one chunk, so
/// splits never land inside a chunk and zipped per-chunk state stays aligned.
pub struct ChunksMutProducer<'a, T> {
    pub(crate) slice: &'a mut [T],
    pub(crate) chunk_size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.chunk_size).min(self.slice.len());
        let (head, tail) = self.slice.split_at_mut(mid);
        (
            Self {
                slice: head,
                chunk_size: self.chunk_size,
            },
            Self {
                slice: tail,
                chunk_size: self.chunk_size,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.chunk_size)
    }
}

/// Owned `Vec<T>` source (`into_par_iter`). Splitting moves the tail into a fresh
/// allocation — fine for a stub, and only on the parallel path.
pub struct VecProducer<T> {
    pub(crate) vec: Vec<T>,
}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.vec.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.vec.split_off(index);
        (self, Self { vec: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.vec.into_iter()
    }
}

/// Integer range source (`(a..b).into_par_iter()`).
pub struct RangeProducer<T> {
    pub(crate) range: std::ops::Range<T>,
}

macro_rules! range_producer {
    ($t:ty) => {
        impl Producer for RangeProducer<$t> {
            type Item = $t;
            type SeqIter = std::ops::Range<$t>;

            fn len(&self) -> usize {
                self.range.end.saturating_sub(self.range.start) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.range.start + index as $t;
                (
                    Self {
                        range: self.range.start..mid,
                    },
                    Self {
                        range: mid..self.range.end,
                    },
                )
            }

            fn into_seq(self) -> Self::SeqIter {
                self.range
            }
        }
    };
}

range_producer!(u64);
range_producer!(usize);

// ---------------------------------------------------------------------------
// Combinator producers
// ---------------------------------------------------------------------------

/// `map` combinator; the closure is shared across pieces via `Arc`.
pub struct MapProducer<P, F> {
    pub(crate) base: P,
    pub(crate) f: Arc<F>,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type SeqIter = MapSeqIter<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            Self {
                base: head,
                f: Arc::clone(&self.f),
            },
            Self {
                base: tail,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        MapSeqIter {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential side of [`MapProducer`].
pub struct MapSeqIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeqIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|item| (self.f)(item))
    }
}

/// `filter` combinator. Work units count *base* items; produced items may be fewer,
/// which the drivers handle by concatenating variable-size piece results in order.
pub struct FilterProducer<P, F> {
    pub(crate) base: P,
    pub(crate) f: Arc<F>,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type SeqIter = FilterSeqIter<P::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            Self {
                base: head,
                f: Arc::clone(&self.f),
            },
            Self {
                base: tail,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        FilterSeqIter {
            inner: self.base.into_seq(),
            f: self.f,
        }
    }
}

/// Sequential side of [`FilterProducer`].
pub struct FilterSeqIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F> Iterator for FilterSeqIter<I, F>
where
    I: Iterator,
    F: Fn(&I::Item) -> bool,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.inner.by_ref().find(|item| (self.f)(item))
    }
}

/// `flat_map_iter` combinator; splits on base items, expands sequentially per piece.
pub struct FlatMapProducer<P, F> {
    pub(crate) base: P,
    pub(crate) f: Arc<F>,
}

impl<P, F, J> Producer for FlatMapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> J + Send + Sync,
    J: IntoIterator,
    J::Item: Send,
{
    type Item = J::Item;
    type SeqIter = FlatMapSeqIter<P::SeqIter, J, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            Self {
                base: head,
                f: Arc::clone(&self.f),
            },
            Self {
                base: tail,
                f: self.f,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        FlatMapSeqIter {
            inner: self.base.into_seq(),
            f: self.f,
            current: None,
        }
    }
}

/// Sequential side of [`FlatMapProducer`].
pub struct FlatMapSeqIter<I, J: IntoIterator, F> {
    inner: I,
    f: Arc<F>,
    current: Option<J::IntoIter>,
}

impl<I, J, F> Iterator for FlatMapSeqIter<I, J, F>
where
    I: Iterator,
    J: IntoIterator,
    F: Fn(I::Item) -> J,
{
    type Item = J::Item;

    fn next(&mut self) -> Option<J::Item> {
        loop {
            if let Some(iter) = self.current.as_mut() {
                if let Some(item) = iter.next() {
                    return Some(item);
                }
                self.current = None;
            }
            let base = self.inner.next()?;
            self.current = Some((self.f)(base).into_iter());
        }
    }
}

/// `zip` combinator; both sides split at the same index, so zipped pairs are
/// identical to the sequential pairing regardless of piece boundaries.
pub struct ZipProducer<A, B> {
    pub(crate) a: A,
    pub(crate) b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a_head, a_tail) = self.a.split_at(index);
        let (b_head, b_tail) = self.b.split_at(index);
        (
            Self {
                a: a_head,
                b: b_head,
            },
            Self {
                a: a_tail,
                b: b_tail,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// `enumerate` combinator; each split carries its global base index forward.
pub struct EnumerateProducer<P> {
    pub(crate) base: P,
    pub(crate) offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type SeqIter = EnumerateSeqIter<P::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(index);
        (
            Self {
                base: head,
                offset: self.offset,
            },
            Self {
                base: tail,
                offset: self.offset + index,
            },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeqIter {
            inner: self.base.into_seq(),
            next_index: self.offset,
        }
    }
}

/// Sequential side of [`EnumerateProducer`].
pub struct EnumerateSeqIter<I> {
    inner: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<(usize, I::Item)> {
        let item = self.inner.next()?;
        let index = self.next_index;
        self.next_index += 1;
        Some((index, item))
    }
}
