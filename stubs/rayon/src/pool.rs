//! The `std::thread` execution engine behind the parallel-iterator surface: a
//! **work-stealing** scheduler with true nested parallelism.
//!
//! # Architecture
//!
//! One process-wide registry holds `MAX_WORKERS` pre-allocated worker slots; worker
//! threads grow lazily to the largest parallelism any call has asked for and are
//! never torn down (process exit reaps them). Each worker owns a **LIFO deque** of
//! jobs: it pushes and pops at the back, while idle workers **steal from the front**
//! (the oldest, typically largest task — the Blumofe–Leiserson discipline, with a
//! `Mutex<VecDeque>` standing in for the lock-free Chase–Lev deque; correctness over
//! cleverness for a vendored stub). Drives started on non-worker threads (the main
//! thread, test threads) enqueue into a shared **injector** queue that workers drain
//! before stealing.
//!
//! A *drive* — one terminal parallel-iterator call such as `collect` or `for_each` —
//! splits its producer into contiguous pieces, publishes a stack-allocated batch
//! descriptor, and pushes one claim *token* per extra executor. Every executor (the
//! driving thread plus any worker that pops or steals a token) repeatedly claims the
//! next unclaimed piece via an atomic counter and runs it sequentially; results land
//! in per-piece slots, so the merged output is index-ordered and bit-identical to
//! sequential execution no matter which thread ran which piece, or in what order.
//!
//! # Nested parallelism
//!
//! A parallel call made *from inside a pool job* — the engine's per-round
//! `par_chunks_mut` or `rayon::join` while the scenario grid already runs the
//! enclosing trial on a worker — no longer degrades to sequential execution: its
//! claim tokens are pushed onto **the running worker's own deque**, where the worker
//! itself pops them LIFO and idle workers steal them FIFO. The blocked parent first
//! drains its own claim loop, then *cancels* every still-queued token of its drive
//! (tokens are pure claim opportunities — once the claim counter is exhausted they
//! are no-ops, so removing them from the queue and counting the latch down directly
//! is equivalent to executing them, minus the dispatch), and finally parks on the
//! latch until the stolen tokens' executors finish. Two properties follow:
//!
//! * **No idle fan-out is wasted**: when the pool has idle workers (the uneven tail
//!   of a grid, a lone huge instance), they steal intra-step pieces and the nested
//!   drive genuinely runs on multiple threads.
//! * **No unbounded blocking**: when the pool is saturated, every token is cancelled
//!   back and the parent simply runs all pieces itself — the pre-stealing sequential
//!   behaviour, with one queue round-trip of overhead.
//!
//! A blocked parent deliberately does **not** steal unrelated work while it waits:
//! stealing a whole grid cell while waiting for a sub-millisecond intra-step barrier
//! would stall the cell it is already running for seconds, and recursive theft grows
//! the stack without bound on large grids. Cancellation makes the wait short instead
//! — the only tokens left are ones some thread is *currently executing*.
//!
//! # Victim selection
//!
//! Steal probes start at a pseudo-random victim and scan cyclically. The generator
//! is a per-worker SplitMix64 **seeded by the worker's index**, so the probe order
//! is reproducible per worker and shares no global RNG state. (Scheduling is still
//! timing-dependent — seeding buys debuggability, not determinism; determinism comes
//! from index-ordered merges, see below.)
//!
//! # Determinism contract
//!
//! Scheduling never influences results: pieces are contiguous index ranges, piece
//! results are merged in index order, and `reduce`/`sum` combine per-piece partials
//! left-to-right. Stealing changes *who executes* a piece, never *where its result
//! merges*. The only way to observe the thread count is through a non-associative
//! reduction operator (e.g. float addition) — every reduction in this workspace is
//! exact and associative (`f64::max`, integer sums), so all outputs are bit-identical
//! from `RAYON_NUM_THREADS=1` to `=N`, nested or not. `docs/DETERMINISM.md` spells
//! out the argument ("Why stealing cannot reorder results").
//!
//! # Small-drive cutoff
//!
//! Drives over fewer than [`SMALL_DRIVE_CUTOFF`] work units skip job setup entirely
//! and run inline on the caller — queueing, waking and cancelling tokens costs more
//! than three items' worth of work ever saves. `join` is exempt: its two closures
//! are arbitrary-sized by construction.
//!
//! # Safety
//!
//! Claim-token jobs carry a raw pointer to the driver's stack-allocated batch. The
//! driver cannot return before every token has been cancelled or has exited (tracked
//! by an `Arc`ed latch that lives independently of the driver's stack, so a token's
//! final countdown never touches freed memory); a cancelled token never dereferences
//! the batch, and an executed token never touches it after its countdown. `scope`
//! jobs are heap-allocated and owned by their queue entry, so they are freed exactly
//! once, wherever they run. Piece panics are caught per piece and re-raised on the
//! driving thread after the batch completes, in piece order.

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::producer::{split_into, Producer};

/// Upper bound on pool workers (slots are pre-allocated so stealers can scan the
/// registry without locking it as a whole). Parallelism above `MAX_WORKERS + 1`
/// (the workers plus the driving thread) is clamped.
const MAX_WORKERS: usize = 128;

/// Drives over fewer work units than this run inline on the calling thread with no
/// pool involvement at all: below it, the job-setup overhead (piece vectors, a latch
/// allocation, queue pushes, worker wakeup, cancellation) exceeds the work being
/// split. The constant is deliberately small — an engine piece plan of 4+ pieces
/// still fans out — and results are bit-identical on both sides by the index-merge
/// discipline (pinned by `small_drives_are_bit_identical_and_inline` in `lib.rs`).
pub const SMALL_DRIVE_CUTOFF: usize = 4;

thread_local! {
    /// This thread's worker slot index, or `usize::MAX` on non-worker threads.
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Scoped thread-count override installed by `ThreadPool::install` (0 = none).
    static INSTALL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Parallelism context inherited from the job this thread is currently
    /// executing (0 = not inside a job). Nested drives started from inside a job
    /// see the same parallelism the enclosing drive ran under.
    static JOB_CONTEXT: Cell<usize> = const { Cell::new(0) };
    /// Per-worker SplitMix64 state for victim selection, seeded by worker index.
    static STEAL_RNG: Cell<u64> = const { Cell::new(0) };
}

fn current_worker() -> Option<usize> {
    let index = WORKER_INDEX.with(|w| w.get());
    (index != usize::MAX).then_some(index)
}

/// Restores the previous install override on drop (panic-safe).
pub(crate) struct InstallGuard {
    prev: usize,
}

pub(crate) fn enter_install(threads: usize) -> InstallGuard {
    InstallGuard {
        prev: INSTALL_OVERRIDE.replace(threads.max(1)),
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALL_OVERRIDE.set(self.prev);
    }
}

/// Restores the previous job context on drop (panic-safe).
struct ContextGuard {
    prev: usize,
}

fn enter_job_context(threads: usize) -> ContextGuard {
    ContextGuard {
        prev: JOB_CONTEXT.replace(threads.max(1)),
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        JOB_CONTEXT.set(self.prev);
    }
}

/// The process-wide default: `RAYON_NUM_THREADS` if set to a positive integer
/// (rayon's convention: unset, `0` or garbage mean "pick for me"), else the
/// machine's available parallelism. Read once, like rayon's global pool size.
pub(crate) fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Parallelism available to a drive started on the current thread right now: a
/// scoped [`crate::ThreadPool::install`] override wins, then the context inherited
/// from the enclosing pool job (this is what makes nesting *fan out* instead of
/// degrading — a drive inside a stolen piece sees the same width as its parent),
/// then the process default.
pub(crate) fn current_parallelism() -> usize {
    let override_threads = INSTALL_OVERRIDE.get();
    if override_threads > 0 {
        return override_threads.min(MAX_WORKERS + 1);
    }
    let context = JOB_CONTEXT.get();
    if context > 0 {
        return context.min(MAX_WORKERS + 1);
    }
    default_threads().min(MAX_WORKERS + 1)
}

/// Mirror of `rayon::current_num_threads`: the *effective* parallelism of a drive
/// started here and now — after `install` overrides and job-context inheritance —
/// as opposed to whatever `RAYON_NUM_THREADS` happens to contain. Bench binaries
/// record this into their JSONs so multi-core CI numbers are attributable.
pub(crate) fn current_num_threads() -> usize {
    current_parallelism()
}

/// True if a drive over `len` work units should take the plain sequential path:
/// the len is below [`SMALL_DRIVE_CUTOFF`], or the effective parallelism is 1
/// (`RAYON_NUM_THREADS=1` or an `install(1)` scope — the pre-pool behaviour, with
/// zero pool involvement and zero extra allocation).
pub(crate) fn run_sequentially(len: usize) -> bool {
    len < SMALL_DRIVE_CUTOFF || current_parallelism() <= 1
}

/// How many pieces to carve `len` work units into: enough beyond the thread count
/// that dynamically-claimed (and stolen) pieces absorb uneven per-item cost, capped
/// so tiny drives are not all dispatch overhead.
fn piece_count(len: usize, threads: usize) -> usize {
    len.min((threads * 4).max(64))
}

// ---------------------------------------------------------------------------
// Registry: worker slots, injector, parking
// ---------------------------------------------------------------------------

/// Type-erased job. For claim tokens `data` points into the driving thread's stack
/// (see the module docs for why that is sound); for `scope` spawns it owns a
/// heap-allocated closure. `context` is the parallelism the job's drive ran under,
/// inherited by any drive nested inside the job.
struct Job {
    data: *const (),
    exec: unsafe fn(*const ()),
    latch: Arc<CountLatch>,
    context: usize,
}

// SAFETY: `data` points at a `Batch`/`JoinTask` whose pieces/closures are
// `Send`/`Sync` (enforced by the spawning functions' bounds) and which outlives the
// job per the latch protocol, or at a `HeapJob` owning a `Send` closure.
unsafe impl Send for Job {}

/// Counts job exits (or cancellations) for one drive/scope. Lives in an `Arc` so
/// the final countdown and wakeup never touch the driver's stack.
struct CountLatch {
    outstanding: Mutex<usize>,
    done: Condvar,
}

impl CountLatch {
    fn new(outstanding: usize) -> Arc<Self> {
        Arc::new(Self {
            outstanding: Mutex::new(outstanding),
            done: Condvar::new(),
        })
    }

    fn increment(&self) {
        *self.outstanding.lock().unwrap() += 1;
    }

    fn count_down(&self) {
        self.count_down_n(1);
    }

    fn count_down_n(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut outstanding = self.outstanding.lock().unwrap();
        *outstanding -= n;
        if *outstanding == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut outstanding = self.outstanding.lock().unwrap();
        while *outstanding > 0 {
            outstanding = self.done.wait(outstanding).unwrap();
        }
    }
}

/// One pre-allocated worker slot: the deque plus diagnostics counters. Counters are
/// incremented with commutative `fetch_add` only; the aggregate read happens in
/// [`pool_stats`].
struct WorkerSlot {
    deque: Mutex<VecDeque<Job>>,
    tasks_executed: AtomicU64,
    steals_attempted: AtomicU64,
    steals_succeeded: AtomicU64,
    parks: AtomicU64,
}

struct Registry {
    workers: Vec<WorkerSlot>,
    injector: Mutex<VecDeque<Job>>,
    /// Worker threads spawned so far; slots `0..spawned` have live threads. Stale
    /// reads are harmless: every slot in `workers` exists from registry creation,
    /// so scanning a few not-yet-spawned (empty) deques is just a wasted probe.
    spawned: AtomicUsize,
    spawn_lock: Mutex<usize>,
    /// Push generation: bumped on every job push so parked workers can detect work
    /// that arrived between their last scan and going to sleep (no lost wakeups).
    generation: Mutex<u64>,
    ready: Condvar,
    /// Jobs executed by non-worker threads (a scope owner draining its own spawns).
    foreign_tasks: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        workers: (0..MAX_WORKERS)
            .map(|_| WorkerSlot {
                deque: Mutex::new(VecDeque::new()),
                tasks_executed: AtomicU64::new(0),
                steals_attempted: AtomicU64::new(0),
                steals_succeeded: AtomicU64::new(0),
                parks: AtomicU64::new(0),
            })
            .collect(),
        injector: Mutex::new(VecDeque::new()),
        spawned: AtomicUsize::new(0),
        spawn_lock: Mutex::new(0),
        generation: Mutex::new(0),
        ready: Condvar::new(),
        foreign_tasks: AtomicU64::new(0),
    })
}

/// Aggregate scheduler diagnostics; see [`crate::pool_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned so far (the driving thread is not counted).
    pub workers: usize,
    /// Jobs executed: claim tokens, join tokens and scope spawns, wherever they ran.
    pub tasks_executed: u64,
    /// Steal scans that ran (one scan probes every other worker once).
    pub steals_attempted: u64,
    /// Steal scans that came back with a job taken from another worker's deque.
    pub steals_succeeded: u64,
    /// Times a worker went to sleep on the idle condvar.
    pub parks: u64,
}

/// Sums the per-worker counters. Purely diagnostic: the counts are exact totals of
/// commutative increments, but *when* you read them relative to in-flight work is
/// up to you — they never feed a result.
pub(crate) fn pool_stats() -> PoolStats {
    let reg = registry();
    let mut stats = PoolStats {
        // clb-audit: allow(relaxed-load) -- diagnostics only
        workers: reg.spawned.load(Ordering::Relaxed),
        // clb-audit: allow(relaxed-load) -- diagnostics only
        tasks_executed: reg.foreign_tasks.load(Ordering::Relaxed),
        ..PoolStats::default()
    };
    for slot in &reg.workers {
        // clb-audit: allow(relaxed-load) -- diagnostics only
        stats.tasks_executed += slot.tasks_executed.load(Ordering::Relaxed);
        // clb-audit: allow(relaxed-load) -- diagnostics only
        stats.steals_attempted += slot.steals_attempted.load(Ordering::Relaxed);
        // clb-audit: allow(relaxed-load) -- diagnostics only
        stats.steals_succeeded += slot.steals_succeeded.load(Ordering::Relaxed);
        // clb-audit: allow(relaxed-load) -- diagnostics only
        stats.parks += slot.parks.load(Ordering::Relaxed);
    }
    stats
}

/// Bumps the push generation and wakes every parked worker.
fn notify_work() {
    let reg = registry();
    {
        let mut generation = reg.generation.lock().unwrap();
        *generation += 1;
    }
    reg.ready.notify_all();
}

/// Pushes one job: onto the current worker's own deque (LIFO end) so the worker
/// finds its freshest sub-tasks first and thieves take the oldest, or onto the
/// shared injector when called from a non-worker thread.
fn push_job(job: Job) {
    push_jobs(std::iter::once(job));
}

/// Pushes a batch of jobs under one queue lock and one wakeup.
fn push_jobs(jobs: impl Iterator<Item = Job>) {
    let reg = registry();
    match current_worker() {
        Some(index) => {
            let mut deque = reg.workers[index].deque.lock().unwrap();
            deque.extend(jobs);
        }
        None => {
            let mut injector = reg.injector.lock().unwrap();
            injector.extend(jobs);
        }
    }
    notify_work();
}

/// Removes every still-queued job of the drive identified by `data` from the one
/// queue this thread pushes to, returning how many were cancelled. A removed token
/// never ran and never will — the caller counts its latch down directly.
fn cancel_pending(data: *const ()) -> usize {
    let reg = registry();
    let mut queue = match current_worker() {
        Some(index) => reg.workers[index].deque.lock().unwrap(),
        None => reg.injector.lock().unwrap(),
    };
    let before = queue.len();
    queue.retain(|job| !std::ptr::eq(job.data, data));
    before - queue.len()
}

/// SplitMix64 step on the thread-local steal RNG.
fn steal_rng_next() -> u64 {
    let state = STEAL_RNG.get().wrapping_add(0x9E37_79B9_7F4A_7C15);
    STEAL_RNG.set(state);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One attempt to find runnable work for worker `index`: own deque (LIFO), then the
/// injector (oldest external drive first), then a steal scan over the other workers
/// starting at a seeded-random victim (FIFO end — the oldest, typically largest
/// task, so a thief takes whole sub-trees rather than crumbs).
fn find_work(index: usize) -> Option<Job> {
    let reg = registry();
    if let Some(job) = reg.workers[index].deque.lock().unwrap().pop_back() {
        return Some(job);
    }
    if let Some(job) = reg.injector.lock().unwrap().pop_front() {
        return Some(job);
    }
    let victims = reg.spawned.load(Ordering::Relaxed);
    if victims <= 1 {
        return None;
    }
    let slot = &reg.workers[index];
    slot.steals_attempted.fetch_add(1, Ordering::Relaxed);
    let start = (steal_rng_next() % victims as u64) as usize;
    for offset in 0..victims {
        let victim = (start + offset) % victims;
        if victim == index {
            continue;
        }
        if let Some(job) = reg.workers[victim].deque.lock().unwrap().pop_front() {
            slot.steals_succeeded.fetch_add(1, Ordering::Relaxed);
            return Some(job);
        }
    }
    None
}

/// Runs one job with its parallelism context installed, then counts its latch down.
/// The last dereference of `job.data` happens inside `exec`; from there on only the
/// `Arc`ed latch is used, so the driver may free the batch as soon as it wakes.
fn execute_job(job: Job) {
    let reg = registry();
    match current_worker() {
        Some(index) => reg.workers[index]
            .tasks_executed
            .fetch_add(1, Ordering::Relaxed),
        None => reg.foreign_tasks.fetch_add(1, Ordering::Relaxed),
    };
    {
        let _context = enter_job_context(job.context);
        // SAFETY: the job's referent is alive — its driver is blocked until this
        // job counts down below (latch protocol, module docs).
        unsafe { (job.exec)(job.data) };
    }
    job.latch.count_down();
}

/// Grows the worker set to at least `target` threads (clamped to `MAX_WORKERS`).
fn ensure_workers(target: usize) {
    let target = target.min(MAX_WORKERS);
    let reg = registry();
    let mut spawned = reg.spawn_lock.lock().unwrap();
    while *spawned < target {
        let index = *spawned;
        std::thread::Builder::new()
            .name(format!("clb-rayon-{index}"))
            .spawn(move || worker_main(index))
            .expect("failed to spawn pool worker thread");
        *spawned += 1;
        reg.spawned.store(*spawned, Ordering::Relaxed);
    }
}

fn worker_main(index: usize) {
    WORKER_INDEX.with(|w| w.set(index));
    // Seeded by worker index: reproducible probe order per worker, no shared state.
    STEAL_RNG.set(index as u64 + 1);
    let reg = registry();
    loop {
        let generation = *reg.generation.lock().unwrap();
        if let Some(job) = find_work(index) {
            execute_job(job);
            continue;
        }
        // Scan-then-check parking: if a push happened after the scan started, the
        // generation moved and we rescan instead of sleeping through the wakeup.
        let guard = reg.generation.lock().unwrap();
        if *guard == generation {
            reg.workers[index].parks.fetch_add(1, Ordering::Relaxed);
            drop(reg.ready.wait(guard).unwrap());
        }
    }
}

/// Blocks the driving thread of a finished claim loop until every token of its
/// drive has exited: cancels the tokens still sitting in this thread's queue
/// (they are no-ops — the claim counter is exhausted), then parks on the latch for
/// the ones some thief is currently executing. See the module docs for why the
/// parent does not steal unrelated work here.
fn wait_for_drive(latch: &CountLatch, data: *const ()) {
    latch.count_down_n(cancel_pending(data));
    latch.wait();
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Shared state of one `join`: the pending closure and its result slot. Lives on the
/// driving thread's stack under the same latch protocol as a `Batch`.
struct JoinTask<B, RB> {
    func: Mutex<Option<B>>,
    result: Mutex<Option<std::thread::Result<RB>>>,
}

impl<B, RB> JoinTask<B, RB>
where
    B: FnOnce() -> RB,
{
    /// Claims the closure if it is still pending and runs it, catching panics.
    /// Idempotent: whoever takes the closure first (a thief or the caller after
    /// finishing its own half) runs it; the other side sees `None` and does nothing.
    fn claim_and_run(&self) {
        let func = self.func.lock().unwrap().take();
        if let Some(func) = func {
            let result = catch_unwind(AssertUnwindSafe(func));
            *self.result.lock().unwrap() = Some(result);
        }
    }
}

unsafe fn join_token_entry<B, RB>(data: *const ())
where
    B: FnOnce() -> RB,
{
    // SAFETY: `data` was created from a `&JoinTask<B, RB>` in `join` and is alive for
    // the duration of this call (latch protocol, see module docs).
    let task = unsafe { &*(data as *const JoinTask<B, RB>) };
    task.claim_and_run();
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Sequential only when the effective parallelism is 1 (`RAYON_NUM_THREADS=1` or an
/// `install(1)` scope): `a` then `b` on the current thread, no pool involvement, no
/// allocation. Otherwise `b` becomes one claimable job — pushed onto the calling
/// worker's own deque when the caller is a pool worker (where an idle worker can
/// steal it: this is how nested joins fan out), or onto the injector otherwise —
/// the caller runs `a` inline, then claims `b` back itself if no thief got there
/// first, so `join` never idles the caller while `b` waits in a queue. Panics are
/// re-raised on the caller, `a`'s first (piece-index order), even when a thief's
/// `b` panic landed chronologically earlier.
pub(crate) fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_parallelism();
    if threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let task = JoinTask {
        func: Mutex::new(Some(oper_b)),
        result: Mutex::new(None),
    };
    let latch = CountLatch::new(1);
    ensure_workers(1);
    push_job(Job {
        data: &task as *const JoinTask<B, RB> as *const (),
        exec: join_token_entry::<B, RB>,
        latch: Arc::clone(&latch),
        context: threads,
    });

    let result_a = catch_unwind(AssertUnwindSafe(oper_a));
    // Claim `b` back if no thief took it; then cancel the token if it is still
    // queued and wait out a thief that is mid-execution.
    task.claim_and_run();
    wait_for_drive(&latch, &task as *const JoinTask<B, RB> as *const ());

    let result_b = task
        .result
        .lock()
        .unwrap()
        .take()
        .expect("join closure never executed");
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// scope
// ---------------------------------------------------------------------------

/// Send-able raw pointer wrapper for closures that smuggle a `&Scope` across
/// threads under the latch protocol.
struct SendConst(*const ());
// SAFETY: the pointee (a `Scope`) is `Sync` in the ways the spawned closure uses it
// (latch, panic slot — both behind locks) and outlives the closure per the latch
// protocol.
unsafe impl Send for SendConst {}

impl SendConst {
    /// Method (not field) access so edition-2021 closures capture the `Send`
    /// wrapper, not the raw pointer inside it.
    fn get(&self) -> *const () {
        self.0
    }
}

/// Heap-allocated `scope` spawn; owned by its queue entry and freed where it runs.
struct HeapJob {
    func: Box<dyn FnOnce() + Send + 'static>,
}

unsafe fn heap_job_entry(data: *const ()) {
    // SAFETY: `data` came from `Box::into_raw` in `Scope::spawn` and is executed
    // exactly once (queues hand a job to exactly one executor, and scope spawns are
    // never cancelled).
    let job = unsafe { Box::from_raw(data as *mut HeapJob) };
    (job.func)();
}

/// Mirror of `rayon::Scope`: spawn tasks that may borrow from the enclosing stack
/// frame (`'scope`); [`crate::scope`] does not return until every spawn finished.
pub struct Scope<'scope> {
    latch: Arc<CountLatch>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    context: usize,
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the pool. On the parallel path the job goes to the
    /// calling worker's own deque (or the injector from a non-worker thread), where
    /// it runs LIFO locally or is stolen FIFO — exactly like a nested drive's claim
    /// token, except the job owns its closure on the heap. Under an effective
    /// parallelism of 1 the body runs inline at the spawn point (upstream defers to
    /// scope exit; code must not depend on the order either way — upstream makes no
    /// ordering guarantee between spawns and the scope body).
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.context <= 1 {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(self))) {
                self.record_panic(payload);
            }
            return;
        }
        self.latch.increment();
        ensure_workers(1);
        let scope_ptr = SendConst(self as *const Scope<'scope> as *const ());
        let func: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: the scope outlives every spawned job (latch protocol).
            let scope = unsafe { &*(scope_ptr.get() as *const Scope<'scope>) };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.record_panic(payload);
            }
        });
        // SAFETY: lifetime erasure for storage only — the latch keeps `scope()`
        // from returning (and the borrowed stack frame from dying) before this
        // closure has run and been dropped.
        let func: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(func) };
        let heap = Box::new(HeapJob { func });
        push_job(Job {
            data: Box::into_raw(heap) as *const (),
            exec: heap_job_entry,
            latch: Arc::clone(&self.latch),
            context: self.context,
        });
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().unwrap();
        slot.get_or_insert(payload);
    }
}

/// Mirror of `rayon::scope`; see [`crate::scope`] for the public contract.
pub(crate) fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        latch: CountLatch::new(0),
        panic: Mutex::new(None),
        context: current_parallelism(),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Drain this scope's still-queued spawns (unlike claim tokens they are real
    // work and must *run*, not be cancelled), then wait out stolen ones. Jobs a
    // spawned body pushes while we drain land in the same queue and are picked up
    // by the same loop.
    loop {
        let reg = registry();
        let job = {
            let mut queue = match current_worker() {
                Some(index) => reg.workers[index].deque.lock().unwrap(),
                None => reg.injector.lock().unwrap(),
            };
            take_matching(&mut queue, &scope.latch)
        };
        match job {
            Some(job) => execute_job(job),
            None => break,
        }
    }
    scope.latch.wait();

    let spawned_panic = scope.panic.lock().unwrap().take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = spawned_panic {
                resume_unwind(payload);
            }
            value
        }
    }
}

/// Removes the most recently pushed job belonging to `latch` (LIFO, like a local
/// pop). Matching by latch identity keeps a non-worker scope owner from yanking
/// unrelated drives out of the shared injector.
fn take_matching(queue: &mut VecDeque<Job>, latch: &Arc<CountLatch>) -> Option<Job> {
    let position = queue
        .iter()
        .rposition(|job| Arc::ptr_eq(&job.latch, latch))?;
    queue.remove(position)
}

// ---------------------------------------------------------------------------
// Batch execution
// ---------------------------------------------------------------------------

/// One drive's shared state, allocated on the driving thread's stack.
struct Batch<'f, P, R, F> {
    pieces: Vec<Mutex<Option<P>>>,
    results: Vec<Mutex<Option<std::thread::Result<R>>>>,
    next: AtomicUsize,
    process: &'f F,
}

impl<P, R, F> Batch<'_, P, R, F>
where
    F: Fn(P) -> R + Sync,
{
    /// Claims and runs pieces until none remain, catching per-piece panics.
    fn claim_loop(&self) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.pieces.len() {
                break;
            }
            let piece = self.pieces[index]
                .lock()
                .unwrap()
                .take()
                .expect("piece claimed twice");
            let result = catch_unwind(AssertUnwindSafe(|| (self.process)(piece)));
            *self.results[index].lock().unwrap() = Some(result);
        }
    }
}

unsafe fn token_entry<P, R, F>(data: *const ())
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    // SAFETY: `data` was created from a `&Batch<P, R, F>` in `execute_pieces` and is
    // alive for the duration of this call (latch protocol, see module docs).
    let batch = unsafe { &*(data as *const Batch<'_, P, R, F>) };
    batch.claim_loop();
}

/// Splits `producer` and runs the pieces across the pool (the calling thread
/// participates), returning per-piece results in piece-index order. Panics from
/// pieces are re-raised here, earliest piece first.
pub(crate) fn run_parallel<P, R, F>(producer: P, process: &F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = current_parallelism();
    let len = producer.len();
    let pieces = split_into(producer, piece_count(len, threads));
    execute_pieces(pieces, threads, process)
}

fn execute_pieces<P, R, F>(pieces: Vec<P>, threads: usize, process: &F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let piece_total = pieces.len();
    let batch = Batch {
        pieces: pieces.into_iter().map(|p| Mutex::new(Some(p))).collect(),
        results: (0..piece_total).map(|_| Mutex::new(None)).collect(),
        next: AtomicUsize::new(0),
        process,
    };

    // One claim token per extra executor; the driving thread is the remaining one.
    let tokens = threads.min(piece_total).saturating_sub(1);
    let latch = CountLatch::new(tokens);
    if tokens > 0 {
        ensure_workers(tokens);
        let data = &batch as *const Batch<'_, P, R, F> as *const ();
        push_jobs((0..tokens).map(|_| Job {
            data,
            exec: token_entry::<P, R, F>,
            latch: Arc::clone(&latch),
            context: threads,
        }));
    }

    // The driver claims pieces too; nested drives inside a piece see `threads` via
    // the thread's own install override or job context, unchanged by this loop.
    batch.claim_loop();
    if tokens > 0 {
        wait_for_drive(&latch, &batch as *const Batch<'_, P, R, F> as *const ());
    }

    let mut out = Vec::with_capacity(piece_total);
    let mut first_panic = None;
    for slot in batch.results {
        match slot.into_inner().unwrap().expect("piece never executed") {
            Ok(result) => out.push(result),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}
