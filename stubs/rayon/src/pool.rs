//! The `std::thread` execution engine behind the parallel-iterator surface.
//!
//! # Architecture
//!
//! One process-wide set of detached worker threads grows lazily to the largest
//! parallelism any call has asked for (workers block on a condvar when idle and are
//! never torn down; process exit reaps them). A *drive* — one terminal
//! parallel-iterator call such as `collect` or `for_each` — splits its producer into
//! contiguous pieces, publishes a stack-allocated batch descriptor, and enqueues one
//! claim *token* per participating worker. Every executor (the workers plus the
//! driving thread itself) repeatedly claims the next unclaimed piece via an atomic
//! counter and runs it sequentially; results land in per-piece slots, so the merged
//! output is index-ordered and bit-identical to sequential execution no matter which
//! thread ran which piece, or in what order.
//!
//! # Determinism contract
//!
//! Scheduling never influences results: pieces are contiguous index ranges, piece
//! results are merged in index order, and `reduce`/`sum` combine per-piece partials
//! left-to-right. The only way to observe the thread count is through a non-associative
//! reduction operator (e.g. float addition) — every reduction in this workspace is
//! exact and associative (`f64::max`, integer sums), so all outputs are bit-identical
//! from `RAYON_NUM_THREADS=1` to `=N`.
//!
//! # Nesting
//!
//! A parallel call made *from inside a pool job* (e.g. the engine's per-round
//! `par_chunks_mut` while the scenario grid already runs the enclosing trial on a
//! worker) executes sequentially on the current thread. That keeps the hot `step()`
//! loop allocation-free on workers, cannot deadlock, and loses nothing: the outer
//! grid already saturates the pool.
//!
//! # Safety
//!
//! Jobs carry a raw pointer to the driver's stack-allocated batch. The driver cannot
//! return before every token has exited (tracked by an `Arc`ed latch that lives
//! independently of the driver's stack, so a token's final countdown never touches
//! freed memory), and a token never dereferences the batch after its countdown.
//! Piece panics are caught per piece and re-raised on the driving thread after the
//! batch completes, in piece order.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crate::producer::{split_into, Producer};

thread_local! {
    /// True while this thread is executing a pool job (worker token or the driver's
    /// own claim loop): nested parallel calls then run sequentially.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
    /// Scoped thread-count override installed by `ThreadPool::install` (0 = none).
    static INSTALL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// Restores the previous `IN_POOL_JOB` value on drop (panic-safe).
struct JobGuard {
    prev: bool,
}

fn enter_job() -> JobGuard {
    JobGuard {
        prev: IN_POOL_JOB.replace(true),
    }
}

impl Drop for JobGuard {
    fn drop(&mut self) {
        IN_POOL_JOB.set(self.prev);
    }
}

/// Restores the previous install override on drop (panic-safe).
pub(crate) struct InstallGuard {
    prev: usize,
}

pub(crate) fn enter_install(threads: usize) -> InstallGuard {
    InstallGuard {
        prev: INSTALL_OVERRIDE.replace(threads.max(1)),
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALL_OVERRIDE.set(self.prev);
    }
}

/// The process-wide default: `RAYON_NUM_THREADS` if set to a positive integer
/// (rayon's convention: unset, `0` or garbage mean "pick for me"), else the
/// machine's available parallelism. Read once, like rayon's global pool size.
pub(crate) fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    })
}

/// Parallelism available to a drive started on the current thread right now.
pub(crate) fn current_parallelism() -> usize {
    if IN_POOL_JOB.get() {
        return 1; // nested: stay sequential
    }
    let override_threads = INSTALL_OVERRIDE.get();
    if override_threads > 0 {
        return override_threads;
    }
    default_threads()
}

/// True if a drive over `len` work units should take the plain sequential path.
/// `RAYON_NUM_THREADS=1` (or nesting) makes this always true — the pre-pool
/// behaviour, with zero pool involvement and zero extra allocation.
pub(crate) fn run_sequentially(len: usize) -> bool {
    len < 2 || current_parallelism() <= 1
}

/// How many pieces to carve `len` work units into: enough beyond the thread count
/// that dynamically-claimed pieces absorb uneven per-item cost, capped so tiny drives
/// are not all dispatch overhead.
fn piece_count(len: usize, threads: usize) -> usize {
    len.min((threads * 4).max(64))
}

// ---------------------------------------------------------------------------
// Global worker set
// ---------------------------------------------------------------------------

/// Type-erased claim-token job handed to a worker. `data` points into the driving
/// thread's stack; see the module docs for why that is sound.
struct Job {
    data: *const (),
    exec: unsafe fn(*const ()),
    latch: std::sync::Arc<TokenLatch>,
}

// SAFETY: `data` points at a `Batch` whose pieces/process are `Send`/`Sync` (enforced
// by `execute_pieces`' bounds) and which outlives the job per the latch protocol.
unsafe impl Send for Job {}

/// Counts worker tokens still running for one batch. Lives in an `Arc` so the final
/// countdown and wakeup never touch the driver's stack.
struct TokenLatch {
    outstanding: Mutex<usize>,
    done: Condvar,
}

impl TokenLatch {
    fn count_down(&self) {
        let mut outstanding = self.outstanding.lock().unwrap();
        *outstanding -= 1;
        self.done.notify_all();
    }

    fn wait(&self) {
        let mut outstanding = self.outstanding.lock().unwrap();
        while *outstanding > 0 {
            outstanding = self.done.wait(outstanding).unwrap();
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    spawned: Mutex<usize>,
}

fn pool() -> &'static PoolShared {
    static POOL: OnceLock<PoolShared> = OnceLock::new();
    POOL.get_or_init(|| PoolShared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Grows the worker set to at least `target` threads.
fn ensure_workers(target: usize) {
    let shared = pool();
    let mut spawned = shared.spawned.lock().unwrap();
    while *spawned < target {
        std::thread::Builder::new()
            .name(format!("clb-rayon-{}", *spawned))
            .spawn(worker_main)
            .expect("failed to spawn pool worker thread");
        *spawned += 1;
    }
}

fn worker_main() {
    let shared = pool();
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                match queue.pop_front() {
                    Some(job) => break job,
                    None => queue = shared.ready.wait(queue).unwrap(),
                }
            }
        };
        {
            let _guard = enter_job();
            // SAFETY: the batch behind `data` is alive — its driver is blocked in
            // `TokenLatch::wait` until this token counts down below.
            unsafe { (job.exec)(job.data) };
        }
        // Last touch of the batch was inside `exec`; from here only the Arc'ed
        // latch is used, so the driver may free the batch as soon as it wakes.
        job.latch.count_down();
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Shared state of one `join`: the pending closure and its result slot. Lives on the
/// driving thread's stack under the same latch protocol as a `Batch`.
struct JoinTask<B, RB> {
    func: Mutex<Option<B>>,
    result: Mutex<Option<std::thread::Result<RB>>>,
}

impl<B, RB> JoinTask<B, RB>
where
    B: FnOnce() -> RB,
{
    /// Claims the closure if it is still pending and runs it, catching panics.
    /// Idempotent: whoever takes the closure first (worker token or the driver after
    /// finishing its own half) runs it; the other side sees `None` and does nothing.
    fn claim_and_run(&self) {
        let func = self.func.lock().unwrap().take();
        if let Some(func) = func {
            let result = catch_unwind(AssertUnwindSafe(func));
            *self.result.lock().unwrap() = Some(result);
        }
    }
}

unsafe fn join_token_entry<B, RB>(data: *const ())
where
    B: FnOnce() -> RB,
{
    // SAFETY: `data` was created from a `&JoinTask<B, RB>` in `join` and is alive for
    // the duration of this call (latch protocol, see module docs).
    let task = unsafe { &*(data as *const JoinTask<B, RB>) };
    task.claim_and_run();
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Sequential whenever a drive over 2 units would be (`RAYON_NUM_THREADS=1`, an
/// `install(1)` scope, or nesting inside a pool job): `a` then `b` on the current
/// thread, no pool involvement, no allocation. Otherwise `b` is enqueued as a
/// claimable job, the caller runs `a` inline, then claims `b` back itself if no
/// worker got there first — so `join` never idles the caller while `b` waits in the
/// queue. Panics are re-raised on the caller, `a`'s first (piece-index order).
pub(crate) fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if run_sequentially(2) {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let task = JoinTask {
        func: Mutex::new(Some(oper_b)),
        result: Mutex::new(None),
    };
    let latch = std::sync::Arc::new(TokenLatch {
        outstanding: Mutex::new(1),
        done: Condvar::new(),
    });
    ensure_workers(1);
    {
        let shared = pool();
        let mut queue = shared.queue.lock().unwrap();
        queue.push_back(Job {
            data: &task as *const JoinTask<B, RB> as *const (),
            exec: join_token_entry::<B, RB>,
            latch: std::sync::Arc::clone(&latch),
        });
        drop(queue);
        shared.ready.notify_one();
    }

    // Both halves run flagged as in-job, so drives nested inside a join arm stay
    // sequential (the same rule as every other pool job).
    let result_a = {
        let _guard = enter_job();
        catch_unwind(AssertUnwindSafe(oper_a))
    };
    {
        let _guard = enter_job();
        task.claim_and_run();
    }
    // The token may still be queued (it finds the closure gone and exits); the task
    // must outlive it regardless, exactly like a batch outlives its claim tokens.
    latch.wait();

    let result_b = task
        .result
        .lock()
        .unwrap()
        .take()
        .expect("join closure never executed");
    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

// ---------------------------------------------------------------------------
// Batch execution
// ---------------------------------------------------------------------------

/// One drive's shared state, allocated on the driving thread's stack.
struct Batch<'f, P, R, F> {
    pieces: Vec<Mutex<Option<P>>>,
    results: Vec<Mutex<Option<std::thread::Result<R>>>>,
    next: AtomicUsize,
    process: &'f F,
}

impl<P, R, F> Batch<'_, P, R, F>
where
    F: Fn(P) -> R + Sync,
{
    /// Claims and runs pieces until none remain, catching per-piece panics.
    fn claim_loop(&self) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.pieces.len() {
                break;
            }
            let piece = self.pieces[index]
                .lock()
                .unwrap()
                .take()
                .expect("piece claimed twice");
            let result = catch_unwind(AssertUnwindSafe(|| (self.process)(piece)));
            *self.results[index].lock().unwrap() = Some(result);
        }
    }
}

unsafe fn token_entry<P, R, F>(data: *const ())
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    // SAFETY: `data` was created from a `&Batch<P, R, F>` in `execute_pieces` and is
    // alive for the duration of this call (latch protocol, see module docs).
    let batch = unsafe { &*(data as *const Batch<'_, P, R, F>) };
    batch.claim_loop();
}

/// Splits `producer` and runs the pieces across the pool (the calling thread
/// participates), returning per-piece results in piece-index order. Panics from
/// pieces are re-raised here, earliest piece first.
pub(crate) fn run_parallel<P, R, F>(producer: P, process: &F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = current_parallelism();
    let len = producer.len();
    let pieces = split_into(producer, piece_count(len, threads));
    execute_pieces(pieces, threads, process)
}

fn execute_pieces<P, R, F>(pieces: Vec<P>, threads: usize, process: &F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let piece_total = pieces.len();
    let batch = Batch {
        pieces: pieces.into_iter().map(|p| Mutex::new(Some(p))).collect(),
        results: (0..piece_total).map(|_| Mutex::new(None)).collect(),
        next: AtomicUsize::new(0),
        process,
    };

    // One claim token per extra executor; the driving thread is the remaining one.
    let tokens = threads.min(piece_total).saturating_sub(1);
    let latch = std::sync::Arc::new(TokenLatch {
        outstanding: Mutex::new(tokens),
        done: Condvar::new(),
    });
    if tokens > 0 {
        ensure_workers(tokens);
        let shared = pool();
        let mut queue = shared.queue.lock().unwrap();
        for _ in 0..tokens {
            queue.push_back(Job {
                data: &batch as *const Batch<'_, P, R, F> as *const (),
                exec: token_entry::<P, R, F>,
                latch: std::sync::Arc::clone(&latch),
            });
        }
        drop(queue);
        shared.ready.notify_all();
    }

    {
        // The driver claims pieces too, flagged as in-job so nesting stays sequential.
        let _guard = enter_job();
        batch.claim_loop();
    }
    latch.wait();

    let mut out = Vec::with_capacity(piece_total);
    let mut first_panic = None;
    for slot in batch.results {
        match slot.into_inner().unwrap().expect("piece never executed") {
            Ok(result) => out.push(result),
            Err(payload) => {
                first_panic.get_or_insert(payload);
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    out
}
