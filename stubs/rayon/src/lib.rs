//! Offline stand-in for `rayon`: the parallel-iterator surface used by this
//! workspace, executed **sequentially**. See `stubs/README.md`.
//!
//! The simulation engine derives an independent RNG stream per `(ball, round)`
//! pair precisely so that results never depend on scheduling; running the same
//! combinators sequentially therefore produces bit-identical output to the real
//! `rayon`, just without the speed-up.

use std::marker::PhantomData;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSliceMut,
    };
}

/// A "parallel" iterator: a thin wrapper over a sequential [`Iterator`] that
/// exposes rayon's method names and signatures.
pub struct ParIter<I> {
    inner: I,
}

/// Marker trait mirroring `rayon::iter::ParallelIterator`; implemented by
/// [`ParIter`] so `use rayon::prelude::*` keeps working.
pub trait ParallelIterator {}

impl<I: Iterator> ParallelIterator for ParIter<I> {}

impl<I: Iterator> ParIter<I> {
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    pub fn flat_map_iter<F, J>(self, f: F) -> ParIter<std::iter::FlatMap<I, J, F>>
    where
        F: FnMut(I::Item) -> J,
        J: IntoIterator,
    {
        ParIter {
            inner: self.inner.flat_map(f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    pub fn zip<J>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>>
    where
        J: Iterator,
    {
        ParIter {
            inner: self.inner.zip(other.inner),
        }
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    pub fn count(self) -> usize {
        self.inner.count()
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    type Iter = std::ops::Range<u64>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()` on slices).
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()` on slices).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

/// Mirror of `rayon::slice::ParallelSliceMut` (`.par_sort_unstable()`,
/// `.par_chunks_mut()`).
pub trait ParallelSliceMut<T> {
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>
    where
        T: Send;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>
    where
        T: Send,
    {
        ParIter {
            inner: self.chunks_mut(chunk_size),
        }
    }
}

/// Mirror of `rayon::ThreadPoolBuilder`; thread counts are accepted and ignored.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    _priv: PhantomData<()>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(self, _threads: usize) -> Self {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { _priv: PhantomData })
    }
}

/// Mirror of `rayon::ThreadPool`: `install` simply runs the closure.
#[derive(Debug)]
pub struct ThreadPool {
    _priv: PhantomData<()>,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

/// Mirror of `rayon::ThreadPoolBuildError` (the stub never produces one).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (stub)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn combinators_match_sequential_semantics() {
        let v = vec![3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let pairs: Vec<(u32, u32)> = v
            .par_iter()
            .map(|&x| x)
            .zip(v.par_iter().map(|&x| x))
            .collect();
        assert_eq!(pairs.len(), 3);

        let total: u32 = v.clone().into_par_iter().sum();
        assert_eq!(total, 6);

        let max = v.par_iter().map(|&x| x as f64).reduce(|| 0.0, f64::max);
        assert!((max - 3.0).abs() < 1e-12);

        let mut keys = vec![5u64, 1, 4];
        keys.par_sort_unstable();
        assert_eq!(keys, vec![1, 4, 5]);

        let flat: Vec<u32> = v.par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(flat, vec![3, 3, 1, 1, 2, 2]);

        let mut buf = vec![0u32; 6];
        buf.par_chunks_mut(2)
            .zip(v.par_iter())
            .for_each(|(chunk, &x)| chunk.fill(x));
        assert_eq!(buf, vec![3, 3, 1, 1, 2, 2]);

        let mut incr = vec![1u32, 2, 3];
        incr.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(incr, vec![11, 12, 13]);
    }

    #[test]
    fn thread_pool_installs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}
