//! Offline stand-in for `rayon`: the parallel-iterator surface used by this
//! workspace, executed on a real `std::thread` **work-stealing** pool. See
//! `stubs/README.md`.
//!
//! The API mirrors `rayon` 1.x exactly where the workspace uses it, so swapping in
//! the upstream crate stays a one-line `Cargo.toml` change. Like upstream, the
//! scheduler is a per-worker-deque work stealer with true nested parallelism:
//! `join`, [`scope`] and parallel drives issued *from inside a pool job* push their
//! sub-tasks onto the running worker's own deque, where idle workers steal them —
//! nesting fans out instead of degrading to sequential execution (`pool` module
//! docs describe the scheduler). Results are **bit-identical to sequential
//! execution** by construction regardless: producers split into contiguous index
//! ranges and every driver merges piece results in index order, so stealing decides
//! *who* runs a piece, never *where its result merges*.
//!
//! Thread count: `RAYON_NUM_THREADS` (read once; unset/`0` means the machine's
//! available parallelism, `1` forces the pre-pool sequential path), scoped overrides
//! via [`ThreadPool::install`]; nested drives inherit the parallelism of the drive
//! that spawned them. Drives shorter than [`SMALL_DRIVE_CUTOFF`] skip the pool
//! entirely. [`pool_stats`] exposes scheduler counters for bench observability.

mod pool;
pub mod producer;

pub use pool::{PoolStats, Scope, SMALL_DRIVE_CUTOFF};

use producer::{
    ChunksMutProducer, EnumerateProducer, FilterProducer, FlatMapProducer, IndexedProducer,
    MapProducer, Producer, RangeProducer, SliceMutProducer, SliceProducer, VecProducer,
    ZipProducer,
};
use std::sync::Arc;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSliceMut,
    };
}

/// A parallel iterator: a splittable [`Producer`] plus rayon's method surface.
pub struct ParIter<P> {
    producer: P,
}

/// Marker trait mirroring `rayon::iter::ParallelIterator`; implemented by
/// [`ParIter`] so `use rayon::prelude::*` keeps working.
pub trait ParallelIterator {}

impl<P: Producer> ParallelIterator for ParIter<P> {}

impl<P: Producer> ParIter<P> {
    pub fn map<F, R>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        ParIter {
            producer: MapProducer {
                base: self.producer,
                f: Arc::new(f),
            },
        }
    }

    pub fn flat_map_iter<F, J>(self, f: F) -> ParIter<FlatMapProducer<P, F>>
    where
        F: Fn(P::Item) -> J + Send + Sync,
        J: IntoIterator,
        J::Item: Send,
    {
        ParIter {
            producer: FlatMapProducer {
                base: self.producer,
                f: Arc::new(f),
            },
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        ParIter {
            producer: FilterProducer {
                base: self.producer,
                f: Arc::new(f),
            },
        }
    }

    pub fn zip<Q>(self, other: ParIter<Q>) -> ParIter<ZipProducer<P, Q>>
    where
        P: IndexedProducer,
        Q: IndexedProducer,
    {
        ParIter {
            producer: ZipProducer {
                a: self.producer,
                b: other.producer,
            },
        }
    }

    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>>
    where
        P: IndexedProducer,
    {
        ParIter {
            producer: EnumerateProducer {
                base: self.producer,
                offset: 0,
            },
        }
    }

    /// Order-preserving collection: parallel pieces are merged in index order, so the
    /// result is bit-identical to sequential collection.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        if pool::run_sequentially(self.producer.len()) {
            self.producer.into_seq().collect()
        } else {
            pool::run_parallel(self.producer, &|piece: P| {
                piece.into_seq().collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        }
    }

    /// Reduction. Per-piece partials fold left-to-right and combine left-to-right in
    /// piece order, so any *associative* `op` with a true identity gives results
    /// bit-identical to sequential execution at every thread count (all reductions in
    /// this workspace — `f64::max`, integer sums — qualify).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        if pool::run_sequentially(self.producer.len()) {
            self.producer.into_seq().fold(identity(), &op)
        } else {
            pool::run_parallel(self.producer, &|piece: P| {
                piece.into_seq().fold(identity(), &op)
            })
            .into_iter()
            .fold(identity(), &op)
        }
    }

    /// Sum via per-piece partial sums (see [`ParIter::reduce`] for the determinism
    /// contract; exact for the integer sums this workspace uses).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        if pool::run_sequentially(self.producer.len()) {
            self.producer.into_seq().sum()
        } else {
            pool::run_parallel(self.producer, &|piece: P| piece.into_seq().sum::<S>())
                .into_iter()
                .sum()
        }
    }

    pub fn count(self) -> usize {
        if pool::run_sequentially(self.producer.len()) {
            self.producer.into_seq().count()
        } else {
            pool::run_parallel(self.producer, &|piece: P| piece.into_seq().count())
                .into_iter()
                .sum()
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        if pool::run_sequentially(self.producer.len()) {
            self.producer.into_seq().for_each(&f);
        } else {
            pool::run_parallel(self.producer, &|piece: P| piece.into_seq().for_each(&f));
        }
    }

    /// Mirror of rayon's `for_each_init`: per-executor scratch, created once per
    /// contiguous piece and threaded through that piece's items in index order.
    ///
    /// Upstream calls `init` once per rayon *job*; here it runs once per piece, which
    /// is the same contract observable-behaviour-wise: code must already treat the
    /// scratch as arbitrary-reuse (a cached allocation, an RNG to reseed per item),
    /// never as a cross-item accumulator — a fold through the scratch would depend on
    /// piece boundaries under either implementation.
    pub fn for_each_init<OP, INIT, T>(self, init: INIT, op: OP)
    where
        INIT: Fn() -> T + Send + Sync,
        OP: Fn(&mut T, P::Item) + Send + Sync,
    {
        if pool::run_sequentially(self.producer.len()) {
            let mut scratch = init();
            self.producer
                .into_seq()
                .for_each(|item| op(&mut scratch, item));
        } else {
            pool::run_parallel(self.producer, &|piece: P| {
                let mut scratch = init();
                piece.into_seq().for_each(|item| op(&mut scratch, item));
            });
        }
    }
}

/// Mirror of `rayon::join`: runs both closures, potentially in parallel, and returns
/// both results.
///
/// The stub executes `b` as one stealable pool job while the caller runs `a` — when
/// the caller is itself a pool worker the job goes onto *its own deque*, so nested
/// joins fan back out to idle workers exactly like upstream. If no thief takes `b`,
/// the caller claims it back itself, so the pair never waits on pool capacity, and
/// each arm may start further parallel work (it inherits the caller's parallelism).
/// Under `RAYON_NUM_THREADS=1` or an `install(1)` scope both closures run
/// sequentially on the current thread with zero pool involvement and zero
/// allocation. Panics propagate to the caller, `a`'s first — even when a stolen
/// `b`'s panic landed chronologically earlier.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(oper_a, oper_b)
}

/// Mirror of `rayon::scope`: spawn any number of tasks that may borrow from the
/// enclosing stack frame; `scope` returns only after every spawn (including
/// transitively spawned ones) has finished.
///
/// Spawns go onto the calling worker's own deque (or the shared injector from a
/// non-worker thread) and may be stolen by idle workers; the scope owner drains its
/// remaining spawns itself while it waits, so the scope never deadlocks on pool
/// capacity. Under an effective parallelism of 1, spawns run inline at the spawn
/// point (upstream defers them to scope exit — upstream makes no ordering guarantee
/// between the scope body and spawns, so code correct against rayon is correct
/// here). A panicking spawn is re-raised from `scope`; a panic in `op` itself takes
/// precedence, matching upstream.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    pool::scope(op)
}

/// Mirror of `rayon::current_num_threads`: the *effective* parallelism a drive
/// started on this thread right now would get — an [`ThreadPool::install`] override
/// first, then the parallelism inherited from the enclosing pool job, then the
/// process default. Bench binaries record this (rather than `RAYON_NUM_THREADS`,
/// which an `install` may override) so BENCH JSONs are attributable.
pub fn current_num_threads() -> usize {
    pool::current_num_threads()
}

/// Scheduler diagnostics: per-worker counters (tasks executed, steal scans
/// attempted/succeeded, parks) summed into one snapshot. Counters are cumulative
/// for the process lifetime and cost one relaxed `fetch_add` per event; they never
/// feed results — bench binaries print them as the greppable `pool: ...` line.
pub fn pool_stats() -> PoolStats {
    pool::pool_stats()
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: Producer<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            producer: VecProducer { vec: self },
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    type Iter = RangeProducer<u64>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            producer: RangeProducer { range: self },
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeProducer<usize>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            producer: RangeProducer { range: self },
        }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator` (`.par_iter()` on slices).
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a + Send;
    type Iter: Producer<Item = Self::Item>;
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceProducer<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            producer: SliceProducer { slice: self },
        }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceProducer<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter {
            producer: SliceProducer { slice: self },
        }
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator` (`.par_iter_mut()` on slices).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a + Send;
    type Iter: Producer<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceMutProducer<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            producer: SliceMutProducer { slice: self },
        }
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceMutProducer<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            producer: SliceMutProducer { slice: self },
        }
    }
}

/// Mirror of `rayon::slice::ParallelSliceMut` (`.par_sort_unstable()`,
/// `.par_chunks_mut()`).
pub trait ParallelSliceMut<T> {
    /// Sorts sequentially — no measured path in this workspace sorts through rayon,
    /// so the parallel merge machinery is not worth stubbing.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>
    where
        T: Send;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>
    where
        T: Send,
    {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            producer: ChunksMutProducer {
                slice: self,
                chunk_size,
            },
        }
    }
}

/// Mirror of `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` (the default) means "pick for me": `RAYON_NUM_THREADS` or the machine's
    /// available parallelism.
    pub fn num_threads(mut self, threads: usize) -> Self {
        self.num_threads = threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            pool::default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// Mirror of `rayon::ThreadPool`: [`ThreadPool::install`] scopes the parallelism of
/// every parallel call made inside the closure to this pool's thread count.
///
/// Unlike upstream, the closure runs on the *calling* thread (workers come from the
/// shared global set); the observable effect — `num_threads(1)` forces sequential
/// execution, `num_threads(n)` caps a drive at `n` executors — matches.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _guard = pool::enter_install(self.threads);
        op()
    }

    /// The parallelism this pool grants to drives under [`ThreadPool::install`].
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Mirror of `rayon::ThreadPoolBuildError` (the stub never produces one).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (stub)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(op)
    }

    #[test]
    fn combinators_match_sequential_semantics() {
        let v = vec![3u32, 1, 2];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);

        let pairs: Vec<(u32, u32)> = v
            .par_iter()
            .map(|&x| x)
            .zip(v.par_iter().map(|&x| x))
            .collect();
        assert_eq!(pairs.len(), 3);

        let total: u32 = v.clone().into_par_iter().sum();
        assert_eq!(total, 6);

        let max = v.par_iter().map(|&x| x as f64).reduce(|| 0.0, f64::max);
        assert!((max - 3.0).abs() < 1e-12);

        let mut keys = vec![5u64, 1, 4];
        keys.par_sort_unstable();
        assert_eq!(keys, vec![1, 4, 5]);

        let flat: Vec<u32> = v.par_iter().flat_map_iter(|&x| vec![x, x]).collect();
        assert_eq!(flat, vec![3, 3, 1, 1, 2, 2]);

        let mut buf = vec![0u32; 6];
        buf.par_chunks_mut(2)
            .zip(v.par_iter())
            .for_each(|(chunk, &x)| chunk.fill(x));
        assert_eq!(buf, vec![3, 3, 1, 1, 2, 2]);

        let mut incr = vec![1u32, 2, 3];
        incr.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(incr, vec![11, 12, 13]);
    }

    #[test]
    fn thread_pool_installs() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }

    #[test]
    fn collect_order_is_identical_across_thread_counts() {
        // Enough items to force many pieces; enumerate + filter + map exercises the
        // combinator stack. The merged output must equal plain sequential iteration.
        let input: Vec<u64> = (0..10_000).collect();
        let expected: Vec<(usize, u64)> = input
            .iter()
            .map(|&x| x * 3 + 1)
            .enumerate()
            .filter(|(_, x)| x % 7 != 0)
            .collect();
        for threads in [1, 2, 4, 7] {
            let got: Vec<(usize, u64)> = with_threads(threads, || {
                input
                    .par_iter()
                    .map(|&x| x * 3 + 1)
                    .enumerate()
                    .filter(|(_, x)| x % 7 != 0)
                    .collect()
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn zipped_chunks_stay_aligned_under_splitting() {
        // chunk i must pair with seed i exactly, no matter where pieces split —
        // including the ragged final chunk.
        let seeds: Vec<u32> = (0..1001).collect();
        let mut buf = vec![0u32; 1001 * 3 - 2]; // last chunk has 1 element
        buf.par_chunks_mut(3)
            .zip(seeds.par_iter())
            .for_each(|(chunk, &seed)| chunk.fill(seed));
        for (i, chunk) in buf.chunks(3).enumerate() {
            assert!(chunk.iter().all(|&x| x == i as u32), "chunk {i}");
        }
    }

    #[test]
    fn pieces_actually_run_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // 64 sleeping pieces per batch give idle workers ample time to claim a token
        // even on a loaded single-CPU machine (sleeping needs no extra cores).
        // Tokens queue FIFO behind other tests' drives, so one batch can
        // legitimately end up all-driver — retry batches until a second executor
        // shows up rather than asserting on wall-clock time, which is flaky under
        // CI load. A pool that never runs pieces on workers fails the final assert.
        let ids = Mutex::new(HashSet::new());
        for _ in 0..50 {
            with_threads(4, || {
                (0..64usize).into_par_iter().for_each(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    ids.lock().unwrap().insert(std::thread::current().id());
                });
            });
            if ids.lock().unwrap().len() >= 2 {
                break;
            }
        }
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct >= 2,
            "expected >= 2 executor threads across 50 batches, saw {distinct}"
        );
    }

    #[test]
    fn num_threads_one_forces_the_sequential_path() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        with_threads(1, || {
            (0..256usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert_eq!(ids.lock().unwrap().len(), 1);
        assert!(ids.lock().unwrap().contains(&std::thread::current().id()));
    }

    #[test]
    fn nested_drives_fan_out_to_other_workers_via_stealing() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // The acceptance test for true nested parallelism: an inner drive issued
        // from a pool worker must execute at least one sub-task on a *different*
        // thread than the worker driving it, and the steal counters must move —
        // nested tokens live on the owning worker's deque, so the only way another
        // thread runs one is by stealing it. Sleeping inner items give idle workers
        // ample time to steal even on a loaded single-CPU machine; like
        // `pieces_actually_run_on_multiple_threads`, retry batches rather than
        // asserting on timing. A pool where nesting degrades to sequential (the
        // pre-work-stealing behaviour) fails the final assert no matter how many
        // retries run.
        let steals_before = pool_stats().steals_succeeded;
        let fanned_out = Mutex::new(false);
        for _ in 0..50 {
            with_threads(4, || {
                (0..4usize).into_par_iter().for_each(|_| {
                    let outer = std::thread::current().id();
                    let inner_ids = Mutex::new(HashSet::new());
                    (0..32usize).into_par_iter().for_each(|_| {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        inner_ids
                            .lock()
                            .unwrap()
                            .insert(std::thread::current().id());
                    });
                    let inner_ids = inner_ids.lock().unwrap();
                    if inner_ids.iter().any(|&id| id != outer) {
                        *fanned_out.lock().unwrap() = true;
                    }
                });
            });
            if *fanned_out.lock().unwrap() {
                break;
            }
        }
        assert!(
            *fanned_out.lock().unwrap(),
            "no inner drive ever executed a sub-task off its driving worker"
        );
        let steals_after = pool_stats().steals_succeeded;
        assert!(
            steals_after > steals_before,
            "fan-out without steals should be impossible: {steals_before} -> {steals_after}"
        );
    }

    #[test]
    fn small_drives_run_inline_and_are_bit_identical_across_the_cutoff() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Below the cutoff there is no job setup at all: every item runs on the
        // calling thread even with a 4-thread pool available.
        let ids = Mutex::new(HashSet::new());
        with_threads(4, || {
            (0..SMALL_DRIVE_CUTOFF - 1).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert_eq!(ids.lock().unwrap().len(), 1);
        assert!(ids.lock().unwrap().contains(&std::thread::current().id()));

        // And the results on both sides of the cutoff are bit-identical to
        // sequential execution — the cutoff is a scheduling decision, not a
        // semantic one.
        for len in [SMALL_DRIVE_CUTOFF - 1, SMALL_DRIVE_CUTOFF] {
            let expected: Vec<usize> = (0..len).map(|x| x * 31 + 7).collect();
            for threads in [1, 2, 4, 8] {
                let got: Vec<usize> = with_threads(threads, || {
                    (0..len).into_par_iter().map(|x| x * 31 + 7).collect()
                });
                assert_eq!(got, expected, "len = {len}, threads = {threads}");
            }
        }
    }

    #[test]
    fn reduce_and_sum_match_sequential_at_any_thread_count() {
        let input: Vec<u64> = (0..5000).map(|x| x * x % 997).collect();
        let seq_sum: u64 = input.iter().sum();
        let seq_max = input.iter().map(|&x| x as f64).fold(0.0, f64::max);
        let seq_count = input.iter().filter(|&&x| x % 3 == 0).count();
        for threads in [1, 3, 8] {
            let (sum, max, count) = with_threads(threads, || {
                (
                    input.par_iter().map(|&x| x).sum::<u64>(),
                    input.par_iter().map(|&x| x as f64).reduce(|| 0.0, f64::max),
                    input
                        .par_iter()
                        .filter(|&&x| x % 3 == 0)
                        .map(|&x| x)
                        .count(),
                )
            });
            assert_eq!(sum, seq_sum, "threads = {threads}");
            assert_eq!(max.to_bits(), seq_max.to_bits(), "threads = {threads}");
            assert_eq!(count, seq_count, "threads = {threads}");
        }
    }

    #[test]
    fn join_returns_both_results_at_any_thread_count() {
        for threads in [1, 2, 4] {
            let (a, b) = with_threads(threads, || {
                join(
                    || (0..1000u64).sum::<u64>(),
                    || (0..1000u64).map(|x| x * 2).sum::<u64>(),
                )
            });
            assert_eq!(a, 499_500, "threads = {threads}");
            assert_eq!(b, 999_000, "threads = {threads}");
        }
    }

    #[test]
    fn join_arms_can_mutate_disjoint_borrows() {
        let mut left = vec![0u32; 512];
        let mut right = vec![0u32; 512];
        with_threads(4, || {
            join(
                || left.iter_mut().enumerate().for_each(|(i, x)| *x = i as u32),
                || right.iter_mut().for_each(|x| *x = 7),
            )
        });
        assert_eq!(left[511], 511);
        assert!(right.iter().all(|&x| x == 7));
    }

    #[test]
    fn join_nested_inside_par_iter_preserves_result_order_at_every_thread_count() {
        // A join inside every piece of an outer drive — results must merge in index
        // order and match sequential execution bit-for-bit at every thread count,
        // whether the b-arms were stolen or claimed back.
        let expected: Vec<(usize, u64, u64)> = (0..64)
            .map(|i| {
                let a: u64 = (0..100).map(|x| x * i as u64).sum();
                let b: u64 = (0..100).map(|x| x ^ i as u64).sum();
                (i, a, b)
            })
            .collect();
        for threads in [1, 2, 4, 8] {
            let got: Vec<(usize, u64, u64)> = with_threads(threads, || {
                (0..64usize)
                    .into_par_iter()
                    .map(|i| {
                        let (a, b) = join(
                            || (0..100u64).map(|x| x * i as u64).sum::<u64>(),
                            || (0..100u64).map(|x| x ^ i as u64).sum::<u64>(),
                        );
                        (i, a, b)
                    })
                    .collect()
            });
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn join_panics_are_raised_a_first_even_when_both_arms_panic() {
        // Panic-first semantics: `a` runs on the caller and its payload wins even if
        // a (possibly stolen) `b` panicked chronologically earlier. With `b` forced
        // to panic before `a` does, the caller must still re-raise `a`'s payload.
        use std::sync::mpsc;
        let err = std::panic::catch_unwind(|| {
            with_threads(4, || {
                let (tx, rx) = mpsc::channel::<()>();
                join(
                    move || {
                        // Wait until `b` has certainly panicked (channel closes when
                        // the sender is dropped by `b`'s unwinding).
                        let _ = rx.recv();
                        panic!("a arm boom");
                    },
                    move || {
                        let _tx = tx;
                        panic!("b arm boom");
                    },
                )
            })
        })
        .expect_err("panic must propagate");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("a arm boom"), "got: {message}");
    }

    #[test]
    fn scope_spawns_complete_before_scope_returns() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let done = AtomicUsize::new(0);
        for threads in [1, 4] {
            done.store(0, Ordering::Relaxed);
            with_threads(threads, || {
                scope(|s| {
                    for _ in 0..16 {
                        s.spawn(|inner| {
                            // Transitive spawns must also be awaited.
                            inner.spawn(|_| {
                                done.fetch_add(1, Ordering::Relaxed);
                            });
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
            // clb-audit: allow(relaxed-load) -- read-after-join, exact total
            assert_eq!(done.load(Ordering::Relaxed), 32, "threads = {threads}");
        }
    }

    #[test]
    fn scope_spawns_may_borrow_the_enclosing_frame() {
        let mut parts = vec![0u64; 4];
        with_threads(4, || {
            let (a, rest) = parts.split_at_mut(1);
            let (b, rest) = rest.split_at_mut(1);
            let (c, d) = rest.split_at_mut(1);
            scope(|s| {
                s.spawn(|_| a[0] = 1);
                s.spawn(|_| b[0] = 2);
                s.spawn(|_| c[0] = 3);
                d[0] = 4;
            });
        });
        assert_eq!(parts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_propagates_spawn_panics_with_body_panic_taking_precedence() {
        let err = std::panic::catch_unwind(|| {
            with_threads(4, || {
                scope(|s| {
                    s.spawn(|_| panic!("spawn boom"));
                });
            })
        })
        .expect_err("spawn panic must propagate");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("spawn boom"), "got: {message}");

        let err = std::panic::catch_unwind(|| {
            with_threads(4, || {
                scope(|s| {
                    s.spawn(|_| panic!("spawn boom"));
                    panic!("body boom");
                })
            })
        })
        .expect_err("body panic must propagate");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("body boom"), "got: {message}");
    }

    #[test]
    fn pool_stats_counters_move_when_parallel_work_runs() {
        let before = pool_stats();
        with_threads(4, || {
            (0..512usize).into_par_iter().for_each(|_| {
                std::hint::black_box(());
            });
        });
        let after = pool_stats();
        assert!(after.workers >= 1);
        assert!(
            after.tasks_executed + after.steals_attempted + after.parks
                >= before.tasks_executed + before.steals_attempted + before.parks,
            "counters must be monotone"
        );
    }

    #[test]
    fn join_propagates_panics_from_either_arm() {
        let err = std::panic::catch_unwind(|| {
            with_threads(4, || join(|| 1, || panic!("right arm boom")))
        })
        .expect_err("panic must propagate");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("right arm boom"), "got: {message}");

        let err =
            std::panic::catch_unwind(|| with_threads(4, || join(|| panic!("left arm boom"), || 2)))
                .expect_err("panic must propagate");
        let message = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(message.contains("left arm boom"), "got: {message}");
    }

    #[test]
    fn for_each_init_reuses_scratch_within_a_piece() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let inits = AtomicUsize::new(0);
        let seen = Mutex::new(vec![false; 10_000]);
        with_threads(4, || {
            (0..10_000usize).into_par_iter().for_each_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::with_capacity(8)
                },
                |scratch, i| {
                    scratch.clear();
                    scratch.push(i);
                    seen.lock().unwrap()[scratch[0]] = true;
                },
            );
        });
        assert!(seen.lock().unwrap().iter().all(|&s| s));
        // One init per piece, never per item.
        // clb-audit: allow(relaxed-load) -- read-after-join, exact total
        let init_count = inits.load(Ordering::Relaxed);
        assert!(init_count <= 64, "init ran {init_count} times");
    }

    #[test]
    fn piece_panics_propagate_to_the_driver() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0..1000usize).into_par_iter().for_each(|i| {
                    assert!(i != 613, "boom at {i}");
                });
            });
        });
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("boom at 613"), "got: {message}");
    }
}
