//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness
//! with the API shape the workspace's benches use. See `stubs/README.md`.
//!
//! Each benchmark runs a short warm-up followed by a fixed number of timed
//! iterations and prints the mean per-iteration time. No statistics, plots or
//! baselines — just enough to keep `cargo bench` meaningful offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub does not report throughput.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_size, &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // Warm-up pass (not timed into the report).
    f(&mut bencher);
    bencher.elapsed = Duration::ZERO;
    bencher.iters = 0;
    for _ in 0..samples {
        f(&mut bencher);
    }
    let mean = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iters
    };
    println!("  {name}: {mean:?}/iter over {} iters", bencher.iters);
}

/// Mirror of `criterion::Bencher`.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times one closure invocation (criterion batches; the stub times singly).
    pub fn iter<F, R>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        let start = Instant::now();
        let out = f();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Mirror of `criterion::BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Mirror of `criterion::Throughput`.
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        let mut calls = 0u32;
        group
            .sample_size(3)
            .bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("gen", 128).0, "gen/128");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
