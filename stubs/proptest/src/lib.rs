//! Offline stand-in for `proptest`: the macro and strategy surface this
//! workspace uses, backed by a deterministic SplitMix64 sampler. See
//! `stubs/README.md`.
//!
//! Supported: `proptest! { #![proptest_config(...)] #[test] fn f(pat in strategy, ...) { .. } }`,
//! integer/float range strategies, `any::<T>()`, tuples of strategies,
//! `prop::collection::vec`, `.prop_map`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are sampled deterministically from the test's source location,
//! so failures replay identically.

/// Deterministic sampler handed to strategies (SplitMix64).
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a sampler for one test case; `salt` encodes (test id, case index).
    pub fn from_salt(salt: u64) -> Self {
        Self {
            state: salt ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform value in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Hashes a test's identity into a base seed (FNV-1a over the location string).
pub fn location_seed(file: &str, line: u32, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= line as u64;
    h = h.wrapping_mul(0x100_0000_01b3);
    h.wrapping_add(case.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// A value generator (mirror of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample(&self, runner: &mut TestRunner) -> Self::Value;

    /// Mirror of `Strategy::prop_map`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(S::Value) -> O, O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.sample(runner))
    }
}

macro_rules! int_range_strategy {
    // $u is $t's unsigned counterpart: going through it keeps the two's-complement
    // span correct for negative-start signed ranges without sign-extension artefacts.
    ($(($t:ty, $u:ty)),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(runner.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, runner: &mut TestRunner) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // A full-width 64-bit inclusive range would overflow span; the
                // workspace never uses one, so keep the arithmetic simple.
                let span = hi.wrapping_sub(lo) as $u as u64 + 1;
                lo.wrapping_add(runner.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i32, u32),
    (i64, u64),
);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        self.start + runner.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, runner: &mut TestRunner) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // next_f64 is in [0, 1); nudging by the span's ulp would be overkill for
        // test sampling, so treat the closed range as half-open.
        lo + runner.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.sample(runner),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);

/// Types with a canonical full-domain strategy (mirror of `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(runner: &mut TestRunner) -> f64 {
        runner.next_f64()
    }
}

/// Full-domain strategy for `T` (mirror of `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};

    /// Strategy for `Vec`s with lengths drawn from `size` (mirror of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.clone().sample(runner);
            (0..len).map(|_| self.element.sample(runner)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition. The
/// `proptest!` expansion wraps each case body in a closure, so `return` aborts
/// only the case at hand.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is threaded in
/// at repetition depth 0 so it can be reused by every generated test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut runner = $crate::TestRunner::from_salt($crate::location_seed(
                        concat!(file!(), "::", stringify!($name)),
                        line!(),
                        case,
                    ));
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut runner);)+
                    #[allow(clippy::redundant_closure_call)]
                    (|| $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tuple_strategy() -> impl Strategy<Value = (usize, u32)> {
        (4usize..=8, 1u32..5).prop_map(|(n, c)| (n, c))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, x in 0.25f64..=0.75, s in any::<u64>()) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((0.25..=0.75).contains(&x));
            let _ = s;
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u32..5, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn negative_start_signed_ranges_stay_in_bounds(a in -5i32..5, b in -100i64..=-10) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((-100..=-10).contains(&b));
        }

        #[test]
        fn patterns_and_assume((n, c) in tuple_strategy()) {
            prop_assume!(n != 5);
            prop_assert_ne!(n, 5);
            prop_assert!(c >= 1);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = crate::TestRunner::from_salt(crate::location_seed("x.rs", 1, 0));
        let mut b = crate::TestRunner::from_salt(crate::location_seed("x.rs", 1, 0));
        assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
    }
}
