//! Offline stand-in for `serde`: the `Serialize`/`Deserialize` marker traits plus
//! the (no-op) derive macros, enough for the workspace's `#[derive(...)]`
//! annotations to compile without a registry. See `stubs/README.md`.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
