//! Offline stand-in for `bytes`: the little-endian cursor surface used by the
//! graph snapshot codec. See `stubs/README.md`.

use std::ops::Deref;

/// Mirror of `bytes::Buf` for the read surface the snapshot decoder uses.
/// Implemented on `&[u8]`, advancing the slice in place.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().unwrap())
    }
}

/// Mirror of `bytes::BufMut` for the write surface the snapshot and shard codecs use.
pub trait BufMut {
    fn put_u8(&mut self, value: u8);
    fn put_u32_le(&mut self, value: u32);
    fn put_u64_le(&mut self, value: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u32_le(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Mirror of `bytes::BytesMut` (a growable byte buffer).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

/// Mirror of `bytes::Bytes` (an immutable byte buffer; the stub does not share).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut buf = BytesMut::with_capacity(12);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        let bytes = buf.freeze();
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.remaining(), 12);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn put_u8_and_put_slice_append_raw_bytes() {
        let mut buf = BytesMut::new();
        buf.put_u8(0xAB);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(buf.freeze().as_ref(), &[0xAB, 1, 2, 3]);
    }
}
