//! No-op stand-in for `serde_derive`: the derives parse and expand to nothing,
//! which is all the workspace needs while it has no runtime (de)serialisation.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
